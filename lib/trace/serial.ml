open Pmtest_util
module Model = Pmtest_model.Model

let sanitize file = String.map (fun c -> if c = '\t' || c = '\n' then ' ' else c) file

let entry_to_line (e : Event.t) =
  let loc_part =
    Printf.sprintf "%d\t%s\t%d" e.Event.thread
      (sanitize (if Loc.is_none e.Event.loc then "-" else (e.Event.loc :> Loc.t).Loc.file))
      (e.Event.loc :> Loc.t).Loc.line
  in
  let tail =
    match e.Event.kind with
    | Event.Op (Model.Write { addr; size }) -> Printf.sprintf "w\t%s\t%d\t%d" loc_part addr size
    | Event.Op (Model.Clwb { addr; size }) -> Printf.sprintf "f\t%s\t%d\t%d" loc_part addr size
    | Event.Op Model.Sfence -> Printf.sprintf "s\t%s" loc_part
    | Event.Op Model.Ofence -> Printf.sprintf "o\t%s" loc_part
    | Event.Op Model.Dfence -> Printf.sprintf "d\t%s" loc_part
    | Event.Op Model.Gpf -> Printf.sprintf "g\t%s" loc_part
    | Event.Checker (Event.Is_persist { addr; size }) ->
      Printf.sprintf "cp\t%s\t%d\t%d" loc_part addr size
    | Event.Checker (Event.Is_ordered_before { a_addr; a_size; b_addr; b_size }) ->
      Printf.sprintf "co\t%s\t%d\t%d\t%d\t%d" loc_part a_addr a_size b_addr b_size
    | Event.Tx Event.Tx_begin -> Printf.sprintf "tb\t%s" loc_part
    | Event.Tx Event.Tx_commit -> Printf.sprintf "tc\t%s" loc_part
    | Event.Tx Event.Tx_abort -> Printf.sprintf "ta\t%s" loc_part
    | Event.Tx (Event.Tx_add { addr; size }) -> Printf.sprintf "tA\t%s\t%d\t%d" loc_part addr size
    | Event.Tx Event.Tx_checker_start -> Printf.sprintf "ts\t%s" loc_part
    | Event.Tx Event.Tx_checker_end -> Printf.sprintf "te\t%s" loc_part
    | Event.Control (Event.Exclude { addr; size }) ->
      Printf.sprintf "xe\t%s\t%d\t%d" loc_part addr size
    | Event.Control (Event.Include { addr; size }) ->
      Printf.sprintf "xi\t%s\t%d\t%d" loc_part addr size
    | Event.Control (Event.Lint_off { rule }) -> Printf.sprintf "lo\t%s\t%s" loc_part (sanitize rule)
    | Event.Control (Event.Lint_on { rule }) -> Printf.sprintf "li\t%s\t%s" loc_part (sanitize rule)
  in
  tail

let entry_of_line line =
  match String.split_on_char '\t' line with
  | kind :: thread :: file :: lineno :: args -> (
    match (int_of_string_opt thread, int_of_string_opt lineno) with
    | Some thread, Some lineno -> (
      let loc = if file = "-" && lineno = 0 then Loc.none else Loc.make ~file ~line:lineno in
      let ints () = List.filter_map int_of_string_opt args in
      let mk kind = Ok (Event.make ~thread ~loc kind) in
      match (kind, args) with
      | "lo", [ rule ] -> mk (Event.Control (Event.Lint_off { rule }))
      | "li", [ rule ] -> mk (Event.Control (Event.Lint_on { rule }))
      | _ -> (
      match (kind, ints ()) with
      | "w", [ addr; size ] -> mk (Event.Op (Model.Write { addr; size }))
      | "f", [ addr; size ] -> mk (Event.Op (Model.Clwb { addr; size }))
      | "s", [] -> mk (Event.Op Model.Sfence)
      | "o", [] -> mk (Event.Op Model.Ofence)
      | "d", [] -> mk (Event.Op Model.Dfence)
      | "g", [] -> mk (Event.Op Model.Gpf)
      | "cp", [ addr; size ] -> mk (Event.Checker (Event.Is_persist { addr; size }))
      | "co", [ a_addr; a_size; b_addr; b_size ] ->
        mk (Event.Checker (Event.Is_ordered_before { a_addr; a_size; b_addr; b_size }))
      | "tb", [] -> mk (Event.Tx Event.Tx_begin)
      | "tc", [] -> mk (Event.Tx Event.Tx_commit)
      | "ta", [] -> mk (Event.Tx Event.Tx_abort)
      | "tA", [ addr; size ] -> mk (Event.Tx (Event.Tx_add { addr; size }))
      | "ts", [] -> mk (Event.Tx Event.Tx_checker_start)
      | "te", [] -> mk (Event.Tx Event.Tx_checker_end)
      | "xe", [ addr; size ] -> mk (Event.Control (Event.Exclude { addr; size }))
      | "xi", [ addr; size ] -> mk (Event.Control (Event.Include { addr; size }))
      | _ -> Error (Printf.sprintf "unknown or malformed entry %S" line)))
    | _ -> Error (Printf.sprintf "bad thread/line fields in %S" line))
  | _ -> Error (Printf.sprintf "too few fields in %S" line)

let write_channel ?(header = []) oc entries =
  List.iter
    (fun h ->
      output_string oc "# ";
      output_string oc (String.map (fun c -> if c = '\n' then ' ' else c) h);
      output_char oc '\n')
    header;
  Array.iter
    (fun e ->
      output_string oc (entry_to_line e);
      output_char oc '\n')
    entries

let is_comment line = String.length line > 0 && line.[0] = '#'

let read_channel ic =
  let entries = Vec.create () in
  let rec go lineno =
    match input_line ic with
    | exception End_of_file -> Ok (Vec.to_array entries)
    | "" -> go (lineno + 1)
    | line when is_comment line -> go (lineno + 1)
    | line -> (
      match entry_of_line line with
      | Ok e ->
        Vec.push entries e;
        go (lineno + 1)
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1

(* Write-to-temp + rename: a crash (or a SIGKILLed [attach --record])
   mid-write leaves at worst a stray [.tmp] sibling, never a truncated
   [.pmt] that a later corpus replay would trip over. *)
let save_file ?header path entries =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path ^ ".") ".tmp" in
  match
    let oc = open_out tmp in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel ?header oc entries)
  with
  | () -> Sys.rename tmp path
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let load_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)

let strip_comment_prefix line =
  let body = String.sub line 1 (String.length line - 1) in
  if String.length body > 0 && body.[0] = ' ' then String.sub body 1 (String.length body - 1)
  else body

let load_file_with_header path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = Vec.create () in
      let rec skim () =
        match input_line ic with
        | exception End_of_file -> ()
        | line when is_comment line ->
          Vec.push header (strip_comment_prefix line);
          skim ()
        | _ -> ()
      in
      (* First pass collects the leading comment block only. *)
      skim ();
      seek_in ic 0;
      match read_channel ic with
      | Ok entries -> Ok (Vec.to_list header, entries)
      | Error e -> Error e)

let recording_sink () =
  let buf = Vec.create () in
  let sink =
    { Sink.emit = (fun kind loc -> Vec.push buf { Event.kind; loc; thread = 0 }) }
  in
  (sink, fun () -> Vec.to_array buf)
