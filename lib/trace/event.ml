open Pmtest_util
module Model = Pmtest_model.Model

type checker =
  | Is_persist of { addr : int; size : int }
  | Is_ordered_before of { a_addr : int; a_size : int; b_addr : int; b_size : int }

type tx_event =
  | Tx_begin
  | Tx_add of { addr : int; size : int }
  | Tx_commit
  | Tx_abort
  | Tx_checker_start
  | Tx_checker_end

type control =
  | Exclude of { addr : int; size : int }
  | Include of { addr : int; size : int }
  | Lint_off of { rule : string }
  | Lint_on of { rule : string }

type kind =
  | Op of Model.op
  | Checker of checker
  | Tx of tx_event
  | Control of control

type t = { kind : kind; loc : Loc.t; thread : int }

let make ?(thread = 0) ?(loc = Loc.none) kind = { kind; loc; thread }

let pp_kind ppf = function
  | Op op -> Model.pp_op ppf op
  | Checker (Is_persist { addr; size }) -> Format.fprintf ppf "isPersist(0x%x,%d)" addr size
  | Checker (Is_ordered_before { a_addr; a_size; b_addr; b_size }) ->
    Format.fprintf ppf "isOrderedBefore(0x%x,%d,0x%x,%d)" a_addr a_size b_addr b_size
  | Tx Tx_begin -> Format.pp_print_string ppf "TX_BEGIN"
  | Tx (Tx_add { addr; size }) -> Format.fprintf ppf "TX_ADD(0x%x,%d)" addr size
  | Tx Tx_commit -> Format.pp_print_string ppf "TX_END"
  | Tx Tx_abort -> Format.pp_print_string ppf "TX_ABORT"
  | Tx Tx_checker_start -> Format.pp_print_string ppf "TX_CHECKER_START"
  | Tx Tx_checker_end -> Format.pp_print_string ppf "TX_CHECKER_END"
  | Control (Exclude { addr; size }) -> Format.fprintf ppf "EXCLUDE(0x%x,%d)" addr size
  | Control (Include { addr; size }) -> Format.fprintf ppf "INCLUDE(0x%x,%d)" addr size
  | Control (Lint_off { rule }) -> Format.fprintf ppf "LINT_OFF(%s)" rule
  | Control (Lint_on { rule }) -> Format.fprintf ppf "LINT_ON(%s)" rule

let pp ppf t = Format.fprintf ppf "@[<h>[t%d] %a @@ %a@]" t.thread pp_kind t.kind Loc.pp t.loc

let op_count entries =
  Array.fold_left (fun n e -> match e.kind with Op _ -> n + 1 | _ -> n) 0 entries
