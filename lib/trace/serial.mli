(** Trace serialization: record a program's trace to a file and check it
    offline later (or on another machine) — the workflow a kernel module
    uses when its traces are exported through a FIFO (paper §4.5).

    The format is line-oriented text, one entry per line:

    {v
    <kind>\t<thread>\t<file>\t<line>\t<args...>
    v}

    with kinds [w]rite, [f]lush (clwb), [s]fence, [o]fence, [d]fence,
    [cp] (isPersist), [co] (isOrderedBefore), [tb]/[tc]/[ta] (TX begin /
    commit / abort), [tA] (TX_ADD), [ts]/[te] (TX checker start / end),
    [xe]/[xi] (exclude / include), [lo]/[li] (lint off / on). Numeric
    fields are decimal. Tabs in file names are replaced by spaces when
    writing.

    Lines starting with [#] are comments and are skipped on read; a
    leading block of [# key: value] comments is the {e header} the fuzz
    corpus uses to carry case metadata alongside the trace. *)

val entry_to_line : Event.t -> string
val entry_of_line : string -> (Event.t, string) result

val write_channel : ?header:string list -> out_channel -> Event.t array -> unit
(** [header] lines are written first, each prefixed with ["# "]. *)

val read_channel : in_channel -> (Event.t array, string) result
(** Fails with a message naming the first malformed line. Comment lines
    ([#]-prefixed) and blank lines are skipped. *)

val save_file : ?header:string list -> string -> Event.t array -> unit
(** Atomic: writes to a temporary file in the same directory and renames
    it over [path], so a crash mid-write never leaves a half-written
    trace behind. *)

val load_file : string -> (Event.t array, string) result

val load_file_with_header : string -> (string list * Event.t array, string) result
(** Like {!load_file} but also returns the leading comment block, with
    the ["# "] prefixes stripped — the corpus-case metadata. *)

val recording_sink : unit -> Sink.t * (unit -> Event.t array)
(** A sink that accumulates everything it sees; the closure returns (and
    keeps) the entries recorded so far. *)
