open Pmtest_model
open Pmtest_trace
module Runtime = Pmtest_core.Runtime
module Report = Pmtest_core.Report
module Obs = Pmtest_obs.Obs
module Wire = Pmtest_wire.Wire

type config = {
  socket : string;
  shards : int;
  workers : int;
  max_sessions : int;
  max_inflight : int;
  idle_timeout : float;
  policy : Wire.policy;
}

let default_config =
  {
    socket = "pmtestd.sock";
    shards = 1;
    workers = 2;
    max_sessions = 32;
    max_inflight = 64;
    idle_timeout = 30.0;
    policy = Wire.Block;
  }

(* One shard: a whole private copy of the daemon's hot state.  Sessions
   pinned to different shards share {e no} mutex — each shard owns its
   runtime (worker domains + merge lock), its arena freelist, and its
   own accept thread, and its session readers run as threads of the
   shard's domain, so even their OCaml runtime lock is private.  The
   only cross-shard state left is the admission table under [t.m],
   touched once per connect/disconnect. *)
type shard = {
  idx : int;
  rt : Runtime.t;
  arena_pool : Packed.pool;
  (* Accepted fds are handed to their pinned shard through this queue;
     the shard's dispatcher spawns the session thread inside its own
     domain (threads cannot migrate, so pinning happens at spawn). *)
  iq_m : Mutex.t;
  iq_c : Condition.t;
  mutable iq : (int * Unix.file_descr) list;  (* reversed arrival order *)
  mutable iq_quit : bool;
}

(* One attached client.  [sm]/[sc] guard the per-session fields; lock
   order is shard-runtime-merge-lock before [sm] (the completion
   callback runs under the former and takes the latter), and the reader
   thread never holds [sm] while dispatching, so that order is never
   inverted. *)
type session = {
  sid : int;
  fd : Unix.file_descr;
  reader : Wire.reader;
  shard : shard;
  model : Model.kind;
  sm : Mutex.t;
  sc : Condition.t;
  mutable prelude : Event.t array;
  mutable inflight : int;  (* dispatched, not yet merged *)
  mutable aggregate : Report.t;
}

type t = {
  cfg : config;
  obs : Obs.t;
  listen : Unix.file_descr;
  shards : shard array;
  mutable domains : unit Domain.t array;
  (* [m] guards everything below: the admission table is the single
     piece of cross-shard daemon state. *)
  m : Mutex.t;
  drained : Condition.t;
  mutable next_cid : int;
  (* cid -> fd of every accepted connection (handshaking or admitted),
     so [stop] can shut all their reads down. *)
  conns : (int, Unix.file_descr) Hashtbl.t;
  (* Connections currently pinned to each shard — the least-loaded
     admission metric and the [sessions_per_shard] introspection. *)
  assigned : int array;
  mutable nlive : int;  (* admitted sessions, vs [max_sessions] *)
  mutable stopping : bool;
  mutable stopped : bool;
}

let active_sessions t =
  Mutex.lock t.m;
  let n = t.nlive in
  Mutex.unlock t.m;
  n

let shard_count t = Array.length t.shards

let sessions_per_shard t =
  Mutex.lock t.m;
  let a = Array.copy t.assigned in
  Mutex.unlock t.m;
  a

(* --- Per-session protocol ------------------------------------------------ *)

let send t fd kind payload =
  match Wire.write_frame fd kind payload with
  | Ok () ->
    if Obs.enabled t.obs then
      Obs.frame_sent t.obs ~bytes:(Wire.header_len + String.length payload);
    true
  | Error _ -> false

let send_err t fd msg = ignore (send t fd Wire.Err (Wire.encode_err msg))

(* Backpressure: [Block] parks the reader thread until the pool catches
   up — the client's sends then stall in [write(2)] once the socket
   buffers fill, with no explicit credit protocol.  [Shed] drops the
   section on the floor and counts it. *)
let dispatch t sess p =
  Mutex.lock sess.sm;
  if t.cfg.policy = Wire.Shed && sess.inflight >= t.cfg.max_inflight then begin
    Mutex.unlock sess.sm;
    Packed.free ~pool:sess.shard.arena_pool p;
    if Obs.enabled t.obs then Obs.section_shed t.obs
  end
  else begin
    while sess.inflight >= t.cfg.max_inflight do
      Condition.wait sess.sc sess.sm
    done;
    sess.inflight <- sess.inflight + 1;
    let depth = sess.inflight in
    let prelude = sess.prelude in
    Mutex.unlock sess.sm;
    if Obs.enabled t.obs then Obs.inflight_depth t.obs depth;
    let t0 = Obs.now_ns () in
    Runtime.send_packed_cb ~model:sess.model ~prelude sess.shard.rt p (fun r ->
        (* Fires in dispatch order under the shard runtime's merge lock:
           a session is pinned to exactly one shard, so its callback
           stream is totally ordered there and the per-session aggregate
           stays byte-identical to a dedicated synchronous run over the
           same section stream — sharding never reorders one session. *)
        Mutex.lock sess.sm;
        sess.aggregate <- Report.merge sess.aggregate r;
        sess.inflight <- sess.inflight - 1;
        Condition.broadcast sess.sc;
        Mutex.unlock sess.sm;
        if Obs.enabled t.obs then Obs.serve_section_ns t.obs (Obs.now_ns () - t0))
  end

(* Returns [false] to end the session. *)
let handle_frame t sess kind payload =
  match (kind : Wire.kind) with
  | Wire.Prelude -> (
    match Packed.decode_wire ~obs:t.obs ~pool:sess.shard.arena_pool payload with
    | Error e ->
      if Obs.enabled t.obs then Obs.frame_corrupt t.obs;
      send_err t sess.fd ("bad prelude: " ^ Packed.decode_error_to_string e);
      false
    | Ok arena ->
      let events = Packed.to_events arena in
      Packed.free ~pool:sess.shard.arena_pool arena;
      Mutex.lock sess.sm;
      sess.prelude <- events;
      Mutex.unlock sess.sm;
      true)
  | Wire.Section -> (
    (* A frame with a valid CRC can still carry garbage (hostile or
       buggy client); the checked decoder turns that into a session
       error instead of an exception inside a checking worker. *)
    match Packed.decode_wire ~obs:t.obs ~pool:sess.shard.arena_pool payload with
    | Error e ->
      if Obs.enabled t.obs then Obs.frame_corrupt t.obs;
      send_err t sess.fd ("bad section: " ^ Packed.decode_error_to_string e);
      false
    | Ok p ->
      dispatch t sess p;
      true)
  | Wire.Get_result ->
    Mutex.lock sess.sm;
    while sess.inflight > 0 do
      Condition.wait sess.sc sess.sm
    done;
    let r = sess.aggregate in
    Mutex.unlock sess.sm;
    send t sess.fd Wire.Report_frame (Wire.encode_report r)
  | Wire.Bye -> false
  | Wire.Hello | Wire.Hello_ack | Wire.Report_frame | Wire.Err
  | Wire.Worker_hello | Wire.Job_offer | Wire.Job_claim | Wire.Job_result | Wire.Job_refused
  | Wire.Checkpoint ->
    (* Farm frames belong on a pmfarm coordinator link, not a checking
       session; refuse them like any other out-of-place kind. *)
    send_err t sess.fd (Printf.sprintf "unexpected %s frame" (Wire.kind_name kind));
    false

(* The reader drains every complete frame a single [read(2)] delivered
   before coming back for more: under concurrent load the syscall, the
   wakeup and the buffer walk amortise across the whole batch. *)
let rec session_loop t sess =
  match Wire.read_batch sess.reader with
  | Ok frames ->
    let continue =
      List.fold_left
        (fun cont (kind, payload) ->
          cont
          && begin
               if Obs.enabled t.obs then
                 Obs.frame_received t.obs ~bytes:(Wire.header_len + String.length payload);
               handle_frame t sess kind payload
             end)
        true frames
    in
    if continue then session_loop t sess
  | Error Wire.Timeout -> send_err t sess.fd "idle timeout exceeded"
  | Error Wire.Closed ->
    (* Client hung up — possibly mid-frame; anything already dispatched
       keeps flowing through the pool and is simply never reported. *)
    ()
  | Error (Wire.Corrupt m) ->
    if Obs.enabled t.obs then Obs.frame_corrupt t.obs;
    send_err t sess.fd ("corrupt frame: " ^ m)
  | Error (Wire.Version_mismatch v) ->
    if Obs.enabled t.obs then Obs.frame_corrupt t.obs;
    send_err t sess.fd (Printf.sprintf "unsupported protocol version %d" v)

(* Handshake, admission, the frame loop, then teardown.  Runs as a
   thread of its shard's domain; never lets an exception escape (a dead
   session must not take the daemon down). *)
let serve_conn t sh cid fd =
  (* [cleanup] is idempotent (the exception arm below may run after a
     normal-path cleanup already did), and [admitted] lives in a ref so
     an exception escaping [session_loop] still unwinds the live-session
     count it bumped at admission. *)
  let admitted = ref false in
  let cleaned = ref false in
  let cleanup () =
    if not !cleaned then begin
      cleaned := true;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Mutex.lock t.m;
      Hashtbl.remove t.conns cid;
      t.assigned.(sh.idx) <- t.assigned.(sh.idx) - 1;
      if !admitted then t.nlive <- t.nlive - 1;
      Condition.broadcast t.drained;
      Mutex.unlock t.m;
      if !admitted && Obs.enabled t.obs then Obs.session_closed t.obs
    end
  in
  match
    if t.cfg.idle_timeout > 0.0 then
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.idle_timeout;
    let reader = Wire.reader fd in
    match Wire.read_one reader with
    | Ok (Wire.Hello, payload) -> (
      if Obs.enabled t.obs then
        Obs.frame_received t.obs ~bytes:(Wire.header_len + String.length payload);
      match Wire.decode_hello payload with
      | Error e ->
        send_err t fd (Wire.error_to_string e);
        cleanup ()
      | Ok model -> (
        Mutex.lock t.m;
        let verdict =
          if t.stopping then Error "daemon is shutting down"
          else if t.nlive >= t.cfg.max_sessions then
            Error (Printf.sprintf "session limit reached (%d active)" t.nlive)
          else begin
            t.nlive <- t.nlive + 1;
            admitted := true;
            Ok cid
          end
        in
        Mutex.unlock t.m;
        match verdict with
        | Error msg ->
          send_err t fd msg;
          cleanup ()
        | Ok sid ->
          if Obs.enabled t.obs then begin
            Obs.session_opened t.obs;
            Obs.shard_session t.obs ~shard:sh.idx
          end;
          let sess =
            {
              sid;
              fd;
              reader;
              shard = sh;
              model;
              sm = Mutex.create ();
              sc = Condition.create ();
              prelude = [||];
              inflight = 0;
              aggregate = Report.empty;
            }
          in
          if
            send t fd Wire.Hello_ack
              (Wire.encode_hello_ack ~session:sid ~max_inflight:t.cfg.max_inflight
                 ~policy:t.cfg.policy)
          then session_loop t sess;
          cleanup ()))
    | Ok (kind, _) ->
      send_err t fd (Printf.sprintf "expected hello, got %s" (Wire.kind_name kind));
      cleanup ()
    | Error (Wire.Version_mismatch v) ->
      if Obs.enabled t.obs then Obs.frame_corrupt t.obs;
      send_err t fd (Printf.sprintf "unsupported protocol version %d" v);
      cleanup ()
    | Error _ -> cleanup ()
  with
  | () -> ()
  | exception _ -> cleanup ()

(* Least-loaded admission, ties to the lowest index: under [t.m], pick
   the shard with the fewest pinned connections and hand the fd over. *)
let pin_conn t fd =
  Mutex.lock t.m;
  if t.stopping then begin
    Mutex.unlock t.m;
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else begin
    let best = ref 0 in
    Array.iteri (fun i n -> if n < t.assigned.(!best) then best := i) t.assigned;
    let s = !best in
    let cid = t.next_cid in
    t.next_cid <- cid + 1;
    Hashtbl.replace t.conns cid fd;
    t.assigned.(s) <- t.assigned.(s) + 1;
    Mutex.unlock t.m;
    let sh = t.shards.(s) in
    Mutex.lock sh.iq_m;
    sh.iq <- (cid, fd) :: sh.iq;
    Condition.signal sh.iq_c;
    Mutex.unlock sh.iq_m
  end

(* Multi-accept fan-in: every shard runs its own acceptor on the one
   shared listener, so accept handling itself scales with the shard
   count and a stall in one shard's domain never blocks new connects. *)
let rec accept_loop t =
  if not t.stopping then
    match Unix.accept ~cloexec:true t.listen with
    | fd, _ ->
      pin_conn t fd;
      accept_loop t
    | exception Unix.Unix_error (EINTR, _, _) -> accept_loop t
    | exception Unix.Unix_error _ -> ()  (* listen fd closed by [stop] *)

(* A shard domain's main: one acceptor thread plus the session
   dispatcher.  Session threads are spawned (and therefore scheduled)
   inside this domain and joined before the domain exits. *)
let shard_main t sh =
  let acceptor = Thread.create (fun () -> accept_loop t) () in
  let threads = ref [] in
  let rec loop () =
    Mutex.lock sh.iq_m;
    while sh.iq = [] && not sh.iq_quit do
      Condition.wait sh.iq_c sh.iq_m
    done;
    let batch = List.rev sh.iq in
    sh.iq <- [];
    let quit = sh.iq_quit in
    Mutex.unlock sh.iq_m;
    List.iter
      (fun (cid, fd) ->
        threads := Thread.create (fun () -> serve_conn t sh cid fd) () :: !threads)
      batch;
    if not quit then loop ()
  in
  loop ();
  Thread.join acceptor;
  List.iter Thread.join !threads

let start ?(obs = Obs.disabled) cfg =
  (* Writing a report to a vanished client must be an EPIPE result, not
     a process kill. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let cfg =
    (* [Block] with a zero bound would deadlock the first section;
       [Shed] with zero is a legitimate drop-everything configuration
       (the deterministic shed test uses it). *)
    let cfg =
      if cfg.policy = Wire.Block && cfg.max_inflight < 1 then { cfg with max_inflight = 1 }
      else cfg
    in
    if cfg.shards < 1 then { cfg with shards = 1 } else cfg
  in
  if Sys.file_exists cfg.socket then Unix.unlink cfg.socket;
  let listen = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  (try
     Unix.bind listen (ADDR_UNIX cfg.socket);
     Unix.listen listen 64
   with e ->
     (try Unix.close listen with Unix.Unix_error _ -> ());
     raise e);
  let mk_shard idx =
    let arena_pool = Packed.create_pool () in
    {
      idx;
      rt = Runtime.create ~workers:cfg.workers ~obs ~shard:idx ~arena_pool ();
      arena_pool;
      iq_m = Mutex.create ();
      iq_c = Condition.create ();
      iq = [];
      iq_quit = false;
    }
  in
  let shards = Array.init cfg.shards mk_shard in
  let t =
    {
      cfg;
      obs;
      listen;
      shards;
      domains = [||];
      m = Mutex.create ();
      drained = Condition.create ();
      next_cid = 1;
      conns = Hashtbl.create 16;
      assigned = Array.make cfg.shards 0;
      nlive = 0;
      stopping = false;
      stopped = false;
    }
  in
  t.domains <- Array.map (fun sh -> Domain.spawn (fun () -> shard_main t sh)) shards;
  t

let config t = t.cfg

let stop t =
  Mutex.lock t.m;
  let first = not t.stopped in
  t.stopped <- true;
  t.stopping <- true;
  Mutex.unlock t.m;
  if first then begin
    (* Closing a listening fd does not wake threads parked in accept(2);
       throwaway connections do — one per acceptor.  Each acceptor
       consumes at most one wakeup after [stopping] flips, then exits. *)
    for _ = 1 to Array.length t.shards do
      try
        let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
        (try Unix.connect fd (ADDR_UNIX t.cfg.socket) with Unix.Unix_error _ -> ());
        Unix.close fd
      with Unix.Unix_error _ -> ()
    done;
    (* Stop reading from every accepted connection (handshaking or
       admitted): each reader finishes the frame in hand, drains what it
       dispatched and unregisters.  The write side stays open so a
       pending report still goes out. *)
    Mutex.lock t.m;
    Hashtbl.iter
      (fun _ fd -> try Unix.shutdown fd SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      t.conns;
    while Hashtbl.length t.conns > 0 do
      Condition.wait t.drained t.m
    done;
    Mutex.unlock t.m;
    (* All sessions are gone; release the shard dispatchers, join the
       shard domains (which join their acceptor and session threads),
       then drain each shard's pool. *)
    Array.iter
      (fun sh ->
        Mutex.lock sh.iq_m;
        sh.iq_quit <- true;
        Condition.signal sh.iq_c;
        Mutex.unlock sh.iq_m)
      t.shards;
    Array.iter Domain.join t.domains;
    Array.iter (fun sh -> ignore (Runtime.shutdown sh.rt)) t.shards;
    (try Unix.close t.listen with Unix.Unix_error _ -> ());
    try Unix.unlink t.cfg.socket with Unix.Unix_error _ | Sys_error _ -> ()
  end
