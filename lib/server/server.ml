open Pmtest_model
open Pmtest_trace
module Runtime = Pmtest_core.Runtime
module Report = Pmtest_core.Report
module Obs = Pmtest_obs.Obs
module Wire = Pmtest_wire.Wire

type config = {
  socket : string;
  workers : int;
  max_sessions : int;
  max_inflight : int;
  idle_timeout : float;
  policy : Wire.policy;
}

let default_config =
  {
    socket = "pmtestd.sock";
    workers = 2;
    max_sessions = 32;
    max_inflight = 64;
    idle_timeout = 30.0;
    policy = Wire.Block;
  }

(* One attached client.  [sm]/[sc] guard the per-session fields; lock
   order is runtime-merge-lock before [sm] (the completion callback runs
   under the former and takes the latter), and the reader thread never
   holds [sm] while dispatching, so that order is never inverted. *)
type session = {
  sid : int;
  fd : Unix.file_descr;
  model : Model.kind;
  sm : Mutex.t;
  sc : Condition.t;
  mutable prelude : Event.t array;
  mutable inflight : int;  (* dispatched, not yet merged *)
  mutable aggregate : Report.t;
}

type t = {
  cfg : config;
  obs : Obs.t;
  rt : Runtime.t;
  listen : Unix.file_descr;
  m : Mutex.t;
  drained : Condition.t;
  mutable next_sid : int;
  (* sid -> fd of live sessions, so [stop] can shut their reads down. *)
  live : (int, Unix.file_descr) Hashtbl.t;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable accept_thread : Thread.t option;
}

let active_sessions t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.live in
  Mutex.unlock t.m;
  n

(* --- Per-session protocol ------------------------------------------------ *)

let send t fd kind payload =
  match Wire.write_frame fd kind payload with
  | Ok () ->
    if Obs.enabled t.obs then
      Obs.frame_sent t.obs ~bytes:(Wire.header_len + String.length payload);
    true
  | Error _ -> false

let send_err t fd msg = ignore (send t fd Wire.Err (Wire.encode_err msg))

(* Backpressure: [Block] parks the reader thread until the pool catches
   up — the client's sends then stall in [write(2)] once the socket
   buffers fill, with no explicit credit protocol.  [Shed] drops the
   section on the floor and counts it. *)
let dispatch t sess p =
  Mutex.lock sess.sm;
  if t.cfg.policy = Wire.Shed && sess.inflight >= t.cfg.max_inflight then begin
    Mutex.unlock sess.sm;
    Packed.free p;
    if Obs.enabled t.obs then Obs.section_shed t.obs
  end
  else begin
    while sess.inflight >= t.cfg.max_inflight do
      Condition.wait sess.sc sess.sm
    done;
    sess.inflight <- sess.inflight + 1;
    let depth = sess.inflight in
    let prelude = sess.prelude in
    Mutex.unlock sess.sm;
    if Obs.enabled t.obs then Obs.inflight_depth t.obs depth;
    let t0 = Obs.now_ns () in
    Runtime.send_packed_cb ~model:sess.model ~prelude t.rt p (fun r ->
        (* Fires in dispatch order under the runtime's merge lock: the
           per-session aggregate is byte-identical to a dedicated
           synchronous run over the same section stream. *)
        Mutex.lock sess.sm;
        sess.aggregate <- Report.merge sess.aggregate r;
        sess.inflight <- sess.inflight - 1;
        Condition.broadcast sess.sc;
        Mutex.unlock sess.sm;
        if Obs.enabled t.obs then Obs.serve_section_ns t.obs (Obs.now_ns () - t0))
  end

(* Returns [false] to end the session. *)
let handle_frame t sess kind payload =
  match (kind : Wire.kind) with
  | Wire.Prelude -> (
    match Packed.decode_wire payload with
    | Error e ->
      if Obs.enabled t.obs then Obs.frame_corrupt t.obs;
      send_err t sess.fd ("bad prelude: " ^ Packed.decode_error_to_string e);
      false
    | Ok arena ->
      let events = Packed.to_events arena in
      Packed.free arena;
      Mutex.lock sess.sm;
      sess.prelude <- events;
      Mutex.unlock sess.sm;
      true)
  | Wire.Section -> (
    (* A frame with a valid CRC can still carry garbage (hostile or
       buggy client); the checked decoder turns that into a session
       error instead of an exception inside a checking worker. *)
    match Packed.decode_wire payload with
    | Error e ->
      if Obs.enabled t.obs then Obs.frame_corrupt t.obs;
      send_err t sess.fd ("bad section: " ^ Packed.decode_error_to_string e);
      false
    | Ok p ->
      dispatch t sess p;
      true)
  | Wire.Get_result ->
    Mutex.lock sess.sm;
    while sess.inflight > 0 do
      Condition.wait sess.sc sess.sm
    done;
    let r = sess.aggregate in
    Mutex.unlock sess.sm;
    send t sess.fd Wire.Report_frame (Wire.encode_report r)
  | Wire.Bye -> false
  | Wire.Hello | Wire.Hello_ack | Wire.Report_frame | Wire.Err ->
    send_err t sess.fd (Printf.sprintf "unexpected %s frame" (Wire.kind_name kind));
    false

let rec session_loop t sess =
  match Wire.read_frame sess.fd with
  | Ok (kind, payload) ->
    if Obs.enabled t.obs then
      Obs.frame_received t.obs ~bytes:(Wire.header_len + String.length payload);
    if handle_frame t sess kind payload then session_loop t sess
  | Error Wire.Timeout -> send_err t sess.fd "idle timeout exceeded"
  | Error Wire.Closed ->
    (* Client hung up — possibly mid-frame; anything already dispatched
       keeps flowing through the pool and is simply never reported. *)
    ()
  | Error (Wire.Corrupt m) ->
    if Obs.enabled t.obs then Obs.frame_corrupt t.obs;
    send_err t sess.fd ("corrupt frame: " ^ m)
  | Error (Wire.Version_mismatch v) ->
    if Obs.enabled t.obs then Obs.frame_corrupt t.obs;
    send_err t sess.fd (Printf.sprintf "unsupported protocol version %d" v)

(* Handshake, registration, the frame loop, then teardown.  Runs on its
   own thread; never lets an exception escape (a dead session must not
   take the daemon down). *)
let serve_conn t fd =
  let cleanup registered sid =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if registered then begin
      Mutex.lock t.m;
      Hashtbl.remove t.live sid;
      Condition.broadcast t.drained;
      Mutex.unlock t.m;
      if Obs.enabled t.obs then Obs.session_closed t.obs
    end
  in
  match
    if t.cfg.idle_timeout > 0.0 then
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.idle_timeout;
    match Wire.read_frame fd with
    | Ok (Wire.Hello, payload) -> (
      if Obs.enabled t.obs then
        Obs.frame_received t.obs ~bytes:(Wire.header_len + String.length payload);
      match Wire.decode_hello payload with
      | Error e ->
        send_err t fd (Wire.error_to_string e);
        cleanup false 0
      | Ok model -> (
        Mutex.lock t.m;
        let admitted =
          if t.stopping then Error "daemon is shutting down"
          else if Hashtbl.length t.live >= t.cfg.max_sessions then
            Error
              (Printf.sprintf "session limit reached (%d active)" (Hashtbl.length t.live))
          else begin
            let sid = t.next_sid in
            t.next_sid <- sid + 1;
            Hashtbl.replace t.live sid fd;
            Ok sid
          end
        in
        Mutex.unlock t.m;
        match admitted with
        | Error msg ->
          send_err t fd msg;
          cleanup false 0
        | Ok sid ->
          if Obs.enabled t.obs then Obs.session_opened t.obs;
          let sess =
            {
              sid;
              fd;
              model;
              sm = Mutex.create ();
              sc = Condition.create ();
              prelude = [||];
              inflight = 0;
              aggregate = Report.empty;
            }
          in
          if
            send t fd Wire.Hello_ack
              (Wire.encode_hello_ack ~session:sid ~max_inflight:t.cfg.max_inflight
                 ~policy:t.cfg.policy)
          then session_loop t sess;
          cleanup true sid))
    | Ok (kind, _) ->
      send_err t fd (Printf.sprintf "expected hello, got %s" (Wire.kind_name kind));
      cleanup false 0
    | Error (Wire.Version_mismatch v) ->
      if Obs.enabled t.obs then Obs.frame_corrupt t.obs;
      send_err t fd (Printf.sprintf "unsupported protocol version %d" v);
      cleanup false 0
    | Error _ -> cleanup false 0
  with
  | () -> ()
  | exception _ -> cleanup false 0

let rec accept_loop t =
  if not t.stopping then
    match Unix.accept ~cloexec:true t.listen with
    | fd, _ ->
      if t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
      else
        (* Detached: the session unregisters itself under [t.m]; [stop]
           waits on that, not on thread joins. *)
        ignore (Thread.create (fun () -> serve_conn t fd) ());
      accept_loop t
    | exception Unix.Unix_error (EINTR, _, _) -> accept_loop t
    | exception Unix.Unix_error _ -> ()  (* listen fd closed by [stop] *)

let start ?(obs = Obs.disabled) cfg =
  (* Writing a report to a vanished client must be an EPIPE result, not
     a process kill. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let cfg =
    (* [Block] with a zero bound would deadlock the first section;
       [Shed] with zero is a legitimate drop-everything configuration
       (the deterministic shed test uses it). *)
    if cfg.policy = Wire.Block && cfg.max_inflight < 1 then { cfg with max_inflight = 1 }
    else cfg
  in
  if Sys.file_exists cfg.socket then Unix.unlink cfg.socket;
  let listen = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  (try
     Unix.bind listen (ADDR_UNIX cfg.socket);
     Unix.listen listen 64
   with e ->
     (try Unix.close listen with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      cfg;
      obs;
      rt = Runtime.create ~workers:cfg.workers ~obs ();
      listen;
      m = Mutex.create ();
      drained = Condition.create ();
      next_sid = 1;
      live = Hashtbl.create 16;
      stopping = false;
      stopped = false;
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let config t = t.cfg

let stop t =
  Mutex.lock t.m;
  let first = not t.stopped in
  t.stopped <- true;
  t.stopping <- true;
  Mutex.unlock t.m;
  if first then begin
    (* Closing a listening fd does not wake a thread parked in
       accept(2); a throwaway connection does.  The acceptor re-checks
       [stopping] before every accept, so it exits either way. *)
    (try
       let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
       (try Unix.connect fd (ADDR_UNIX t.cfg.socket) with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen with Unix.Unix_error _ -> ());
    (* Stop reading from every live session: each reader finishes the
       frame in hand, drains what it dispatched and unregisters.  The
       write side stays open so a pending report still goes out. *)
    Mutex.lock t.m;
    Hashtbl.iter
      (fun _ fd -> try Unix.shutdown fd SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      t.live;
    while Hashtbl.length t.live > 0 do
      Condition.wait t.drained t.m
    done;
    Mutex.unlock t.m;
    ignore (Runtime.shutdown t.rt);
    try Unix.unlink t.cfg.socket with Unix.Unix_error _ | Sys_error _ -> ()
  end
