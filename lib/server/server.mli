(** [pmtestd]: a multi-client checking service over the packed wire
    format.

    One daemon owns one {!Pmtest_core.Runtime} worker pool and a Unix
    domain socket.  Each accepted connection is a {e session}: it
    declares a persistency model in its [Hello], then streams packed
    trace sections ({!Pmtest_wire.Wire} frames); sections are fed into
    the shared pool with a per-session completion callback, so every
    session accumulates its own aggregate report — byte-identical to
    what a dedicated in-process run over the same sections would
    produce — while sharing the checking domains with every other
    session, across models.

    Robustness contract:
    - a corrupt frame (bad CRC, bad packed bytes) fails {e that
      session} with an [Err] reply; the worker pool never sees the
      bytes;
    - a client that crashes mid-frame is reaped when its socket reads
      EOF; sections it already sent finish checking and are discarded;
    - a session idle longer than [idle_timeout] is closed;
    - sessions past [max_inflight] unchecked sections are either paused
      ([Block]: the daemon stops reading their socket) or trimmed
      ([Shed]: further sections are dropped and counted);
    - {!stop} drains: no new sessions, live readers are shut down,
      everything dispatched is checked, then the pool exits. *)

module Wire = Pmtest_wire.Wire

type config = {
  socket : string;  (** Path of the Unix domain socket to bind. *)
  workers : int;  (** Checking domains in the shared pool. *)
  max_sessions : int;  (** Concurrent sessions; excess get [Err]. *)
  max_inflight : int;  (** Unchecked sections per session. *)
  idle_timeout : float;  (** Seconds between frames; [0.] disables. *)
  policy : Wire.policy;  (** What to do past [max_inflight]. *)
}

val default_config : config
(** [pmtestd.sock], 2 workers, 32 sessions, 64 inflight, 30 s idle,
    [Block]. *)

type t

val start : ?obs:Pmtest_obs.Obs.t -> config -> t
(** Bind, listen and return immediately; sessions run on their own
    threads.  A stale socket file at [cfg.socket] is replaced.  [Block]
    clamps [max_inflight] up to 1 (zero would deadlock); [Shed] keeps
    it, so [max_inflight = 0] + [Shed] drops every section — the
    deterministic shed configuration tests use. *)

val stop : t -> unit
(** Graceful drain, idempotent: stop accepting, shut down every live
    session's read side, wait for them to unregister, then drain and
    join the worker pool and unlink the socket. *)

val config : t -> config

val active_sessions : t -> int
