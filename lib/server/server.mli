(** [pmtestd]: a multi-client checking service over the packed wire
    format.

    One daemon owns a Unix domain socket and [shards] independent
    execution shards.  Each shard is a whole private copy of the hot
    path: its own {!Pmtest_core.Runtime} (worker domains + merge lock),
    its own packed-arena freelist, its own acceptor on the shared
    listener, and its own domain on which its session readers run — two
    sessions pinned to different shards share {e no} mutex.  Connections
    are pinned to the least-loaded shard at accept time; a session never
    migrates, so its completion callbacks still fire in dispatch order
    on one merge loop and its aggregate report stays byte-identical to a
    dedicated in-process run over the same sections.

    Each accepted connection is a {e session}: it declares a persistency
    model in its [Hello], then streams packed trace sections
    ({!Pmtest_wire.Wire} frames); the session reader decodes every
    complete frame per [read(2)] in one batch and feeds its shard's pool
    with a per-session completion callback.

    Robustness contract:
    - a corrupt frame (bad CRC, bad packed bytes) fails {e that
      session} with an [Err] reply; the worker pool never sees the
      bytes;
    - a client that crashes mid-frame is reaped when its socket reads
      EOF; sections it already sent finish checking and are discarded;
    - a session idle longer than [idle_timeout] is closed;
    - sessions past [max_inflight] unchecked sections are either paused
      ([Block]: the daemon stops reading their socket) or trimmed
      ([Shed]: further sections are dropped and counted);
    - {!stop} drains: no new sessions, live readers are shut down,
      everything dispatched is checked, then every shard exits. *)

module Wire = Pmtest_wire.Wire

type config = {
  socket : string;  (** Path of the Unix domain socket to bind. *)
  shards : int;  (** Independent execution shards (clamped up to 1). *)
  workers : int;  (** Checking domains {e per shard}. *)
  max_sessions : int;  (** Concurrent sessions, whole daemon; excess get [Err]. *)
  max_inflight : int;  (** Unchecked sections per session. *)
  idle_timeout : float;  (** Seconds between frames; [0.] disables. *)
  policy : Wire.policy;  (** What to do past [max_inflight]. *)
}

val default_config : config
(** [pmtestd.sock], 1 shard, 2 workers, 32 sessions, 64 inflight, 30 s
    idle, [Block]. *)

type t

val start : ?obs:Pmtest_obs.Obs.t -> config -> t
(** Bind, listen and return immediately; each shard runs on its own
    domain, sessions on threads of their shard's domain.  A stale socket
    file at [cfg.socket] is replaced.  [Block] clamps [max_inflight] up
    to 1 (zero would deadlock); [Shed] keeps it, so [max_inflight = 0] +
    [Shed] drops every section — the deterministic shed configuration
    tests use. *)

val stop : t -> unit
(** Graceful drain, idempotent: stop accepting, shut down every live
    connection's read side, wait for them to unregister, then join the
    shard domains, drain every shard's worker pool and unlink the
    socket. *)

val config : t -> config

val active_sessions : t -> int
(** Admitted (post-handshake) sessions currently live, whole daemon. *)

val shard_count : t -> int

val sessions_per_shard : t -> int array
(** Connections currently pinned to each shard (admitted sessions plus
    any still in handshake), by shard index — the least-loaded admission
    metric, exposed for tests and monitoring. *)
