module Report = Pmtest_core.Report
module Event = Pmtest_trace.Event
module Vec = Pmtest_util.Vec

type category = Ordering | Writeback | Perf_writeback | Backup | Completion | Perf_log
type provenance = Synthetic | Reproduced of string | New_bug of string

type runner = ?observer:(Event.t array -> unit) -> unit -> Report.t

type t = {
  id : string;
  category : category;
  provenance : provenance;
  description : string;
  expected : Report.kind;
  run : runner;
  run_clean : runner;
}

let category_name = function
  | Ordering -> "ordering"
  | Writeback -> "writeback"
  | Perf_writeback -> "performance (writeback)"
  | Backup -> "backup"
  | Completion -> "completion"
  | Perf_log -> "performance (log)"

let is_low_level = function
  | Ordering | Writeback | Perf_writeback -> true
  | Backup | Completion | Perf_log -> false

type outcome = { case : t; detected : bool; clean : bool; report : Report.t }

let execute case =
  let report = case.run () in
  let detected = Report.count case.expected report > 0 in
  let clean = Report.is_clean (case.run_clean ()) in
  { case; detected; clean; report }

let record (run : runner) =
  let buf = Vec.create () in
  ignore (run ~observer:(fun section -> Array.iter (Vec.push buf) section) ());
  Vec.to_array buf

let trace case = record case.run
let trace_clean case = record case.run_clean
