(** One entry of the bug-injection suite (paper Table 5 / Table 6).

    A case is a small annotated program with a specific crash-consistency
    or performance bug switched on; running it under a synchronous PMTest
    session yields the report the diagnosis is matched against. *)

module Report = Pmtest_core.Report
module Event = Pmtest_trace.Event

type category =
  | Ordering  (** Missing or misplaced ordering enforcement (low-level). *)
  | Writeback  (** Missing or misplaced writeback (low-level). *)
  | Perf_writeback  (** Redundant writeback (low-level performance). *)
  | Backup  (** Missing or misplaced backup of persistent objects. *)
  | Completion  (** Incomplete transactions. *)
  | Perf_log  (** Redundant undo-log entries (transaction performance). *)

type provenance =
  | Synthetic  (** Injected for the suite (Table 5). *)
  | Reproduced of string  (** Known bug from a commit history (Table 6). *)
  | New_bug of string  (** Bug PMTest found (Table 6). *)

type runner = ?observer:(Event.t array -> unit) -> unit -> Report.t
(** A case program under a PMTest session. [observer] sees every trace
    section the session sends (see {!Pmtest_core.Pmtest.on_section}) —
    how the static lint gets raw op streams out of the catalog. *)

type t = {
  id : string;
  category : category;
  provenance : provenance;
  description : string;
  expected : Report.kind;
  run : runner;  (** The buggy program under a PMTest session. *)
  run_clean : runner;
      (** The same program with the bug switched off — the false-positive
          control. *)
}

val category_name : category -> string
val is_low_level : category -> bool

type outcome = {
  case : t;
  detected : bool;  (** Buggy run reports the expected kind. *)
  clean : bool;  (** Bug-free run reports nothing. *)
  report : Report.t;
}

val execute : t -> outcome

val trace : t -> Event.t array
(** Run the buggy program and return the full concatenated trace it
    sent, in section order. *)

val trace_clean : t -> Event.t array
(** Same for the bug-free twin. *)
