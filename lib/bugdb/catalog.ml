open Pmtest_util
open Pmtest_pmdk
module Report = Pmtest_core.Report
module Pmtest = Pmtest_core.Pmtest
module Region = Pmtest_mnemosyne.Region
module Pmap = Pmtest_mnemosyne.Pmap
module Fs = Pmtest_pmfs.Fs

(* Every case runs its program twice — once with the bug switched on and
   once clean — under a synchronous single-worker session, so detection
   and the false-positive control come from the same code path. *)

let with_session ?observer f =
  let session = Pmtest.init ~workers:0 () in
  (match observer with Some g -> Pmtest.on_section session g | None -> ());
  f session;
  Pmtest.finish session

let value_bytes rng n = Bytes.init n (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26))

(* --- PMDK-structure runners ----------------------------------------------- *)

(* Run [inserts] key/value pairs through a map builder, wrapping each
   insert in the transaction checkers and sending one section per op. *)
let pmdk_runner ~build ~keys ~value_size ~seed bug ?observer () =
  with_session ?observer (fun session ->
      let pool = Pool.create ~size:(1 lsl 23) ~sink:(Pmtest.sink session) () in
      let rng = Rng.create seed in
      let insert = build pool in
      List.iter
        (fun key ->
          Pool.tx_checker_start pool;
          insert bug ~key ~value:(value_bytes rng value_size);
          Pool.tx_checker_end pool;
          Pmtest.send_trace session)
        keys)

let seq_keys n = List.init n (fun i -> Int64.of_int i)
let rand_keys ~seed n = List.init n (fun i -> Int64.of_int ((i * 2654435761) lxor seed land 0xffff))
let repeat_keys n ~distinct = List.init n (fun i -> Int64.of_int (i mod distinct))

let ctree_build pool =
  let m = Ctree_map.create pool in
  fun bug ~key ~value -> Ctree_map.insert ?bug m ~key ~value

let btree_build pool =
  let m = Btree_map.create pool in
  fun bug ~key ~value -> Btree_map.insert ?bug m ~key ~value

let rbtree_build pool =
  let m = Rbtree_map.create pool in
  fun bug ~key ~value -> Rbtree_map.insert ?bug m ~key ~value

let hashmap_build ?(buckets = 64) pool =
  let m = Hashmap_tx.create ~buckets pool in
  fun bug ~key ~value -> Hashmap_tx.insert ?bug m ~key ~value

let hashmap_build_default pool = hashmap_build pool

(* A pool-level fault active for the whole run (commit behaviour). *)
let pool_fault_runner ~build ~keys ~seed fault ?observer () =
  with_session ?observer (fun session ->
      let pool = Pool.create ~size:(1 lsl 23) ~sink:(Pmtest.sink session) () in
      Pool.set_fault pool fault;
      let rng = Rng.create seed in
      let insert = build pool in
      List.iter
        (fun key ->
          Pool.tx_checker_start pool;
          insert None ~key ~value:(value_bytes rng 16);
          Pool.tx_checker_end pool;
          Pmtest.send_trace session)
        keys)

(* hashmap_atomic carries its own low-level checkers. *)
let atomic_runner ?(buckets = 32) ~keys ~seed bug ?observer () =
  with_session ?observer (fun session ->
      let pool = Pool.create ~size:(1 lsl 23) ~sink:(Pmtest.sink session) () in
      let m = Hashmap_atomic.create ~buckets pool in
      let rng = Rng.create seed in
      List.iter
        (fun key ->
          ignore (Hashmap_atomic.insert ?bug m ~key ~value:(value_bytes rng 16));
          Pmtest.send_trace session)
        keys)

(* Mnemosyne persistent-map runner (built-in commit annotations plus the
   transaction checkers around each set). *)
let pmap_runner ~sets ~seed fault ?observer () =
  with_session ?observer (fun session ->
      let region = Region.create ~sink:(Pmtest.sink session) () in
      Region.set_fault region fault;
      let m = Pmap.create ~buckets:64 region in
      let rng = Rng.create seed in
      for i = 0 to sets - 1 do
        Region.tx_checker_start region;
        Pmap.set m ~key:(Int64.of_int (Rng.int rng 64)) ~value:(Printf.sprintf "v%d" i);
        Region.tx_checker_end region;
        Pmtest.send_trace session
      done)

(* PMFS runner: a small create/write/read mix with the fault installed. *)
let pmfs_runner ?(ops = `Mixed) fault ?observer () =
  with_session ?observer (fun session ->
      let fs = Fs.mkfs ~sink:(Pmtest.sink session) () in
      Fs.set_fault fs fault;
      let send () = Pmtest.send_trace session in
      (match ops with
      | `Mixed ->
        ignore (Fs.create fs "alpha");
        send ();
        (match Fs.lookup fs "alpha" with
        | Some ino ->
          ignore (Fs.write fs ~ino ~off:0 (String.make 600 'x'));
          send ();
          ignore (Fs.read fs ~ino ~off:0 ~len:64);
          send ();
          Fs.fsync fs ~ino;
          send ()
        | None -> ());
        ignore (Fs.create fs "beta");
        send ();
        ignore (Fs.unlink fs "alpha");
        send ()
      | `Write_heavy -> (
        ignore (Fs.create fs "data");
        send ();
        match Fs.lookup fs "data" with
        | Some ino ->
          for i = 0 to 4 do
            ignore (Fs.write fs ~ino ~off:(i * 700) (String.make 300 'y'));
            send ()
          done
        | None -> ())))

(* --- Case construction ------------------------------------------------------ *)

let case ~id ~category ?(provenance = Case.Synthetic) ~description ~expected ~buggy ~clean () =
  { Case.id; category; provenance; description; expected; run = buggy; run_clean = clean }

let pmdk_case ~id ~category ?provenance ~description ~expected ~build ~keys ~value_size ~seed bug
    =
  case ~id ~category ?provenance ~description ~expected
    ~buggy:(pmdk_runner ~build ~keys ~value_size ~seed (Some bug))
    ~clean:(pmdk_runner ~build ~keys ~value_size ~seed None)
    ()

let atomic_case ~id ~category ?provenance ~description ~expected ?buckets ~keys ~seed bug =
  case ~id ~category ?provenance ~description ~expected
    ~buggy:(atomic_runner ?buckets ~keys ~seed (Some bug))
    ~clean:(atomic_runner ?buckets ~keys ~seed None)
    ()

let pmap_case ~id ~category ~description ~expected ~sets ~seed fault =
  case ~id ~category ~description ~expected
    ~buggy:(pmap_runner ~sets ~seed (Some fault))
    ~clean:(pmap_runner ~sets ~seed None)
    ()

let pmfs_case ~id ~category ?provenance ~description ~expected ?ops fault =
  case ~id ~category ?provenance ~description ~expected
    ~buggy:(pmfs_runner ?ops (Some fault))
    ~clean:(pmfs_runner ?ops None)
    ()

let pool_fault_case ~id ~category ~description ~expected ~build ~keys ~seed fault =
  case ~id ~category ~description ~expected
    ~buggy:(pool_fault_runner ~build ~keys ~seed (Some fault))
    ~clean:(pool_fault_runner ~build ~keys ~seed None)
    ()

(* --- Table 5: the synthetic suite ------------------------------------------- *)

let ordering_cases =
  [
    atomic_case ~id:"ord-1" ~category:Case.Ordering
      ~description:"hashmap_atomic: no sfence between entry writeback and publish"
      ~expected:Report.Not_ordered ~keys:(seq_keys 6) ~seed:11 Hashmap_atomic.Missing_fence_entry;
    atomic_case ~id:"ord-2" ~category:Case.Ordering
      ~description:"hashmap_atomic: fence issued before the entry stores instead of after"
      ~expected:Report.Not_ordered ~keys:(seq_keys 6) ~seed:12 Hashmap_atomic.Misplaced_fence_entry;
    atomic_case ~id:"ord-3" ~category:Case.Ordering
      ~description:"hashmap_atomic: bucket-head publish flushed but never fenced"
      ~expected:Report.Not_persisted ~keys:(seq_keys 6) ~seed:13 Hashmap_atomic.Missing_fence_slot;
    pmap_case ~id:"ord-4" ~category:Case.Ordering
      ~description:"mnemosyne: commit marker unfenced, in-place updates may outrun it"
      ~expected:Report.Not_ordered ~sets:6 ~seed:14 Region.Skip_commit_fence;
  ]

let writeback_cases =
  [
    atomic_case ~id:"wb-1" ~category:Case.Writeback
      ~description:"hashmap_atomic: new entry never written back" ~expected:Report.Not_ordered
      ~keys:(seq_keys 6) ~seed:21 Hashmap_atomic.Missing_flush_entry;
    atomic_case ~id:"wb-2" ~category:Case.Writeback
      ~description:"hashmap_atomic: bucket-head publish never written back"
      ~expected:Report.Not_persisted ~keys:(seq_keys 6) ~seed:22 Hashmap_atomic.Missing_flush_slot;
    atomic_case ~id:"wb-3" ~category:Case.Writeback
      ~description:"hashmap_atomic: writeback covers only part of the new entry"
      ~expected:Report.Not_ordered ~keys:(seq_keys 6) ~seed:23 Hashmap_atomic.Misplaced_flush_entry;
    atomic_case ~id:"wb-4" ~category:Case.Writeback
      ~description:"hashmap_atomic: element count never persisted" ~expected:Report.Not_persisted
      ~keys:(seq_keys 6) ~seed:24 Hashmap_atomic.Missing_count_flush;
    pmap_case ~id:"wb-5" ~category:Case.Writeback
      ~description:"mnemosyne: redo-log records appended but never flushed"
      ~expected:Report.Not_persisted ~sets:6 ~seed:25 Region.Skip_log_flush;
    pmap_case ~id:"wb-6" ~category:Case.Writeback
      ~description:"mnemosyne: in-place updates applied without writeback"
      ~expected:Report.Not_persisted ~sets:6 ~seed:26 Region.Skip_apply_writeback;
  ]

let perf_writeback_cases =
  [
    atomic_case ~id:"pwb-1" ~category:Case.Perf_writeback
      ~description:"hashmap_atomic: new entry flushed twice" ~expected:Report.Duplicate_writeback
      ~keys:(seq_keys 6) ~seed:31 Hashmap_atomic.Duplicate_flush_entry;
    atomic_case ~id:"pwb-2" ~category:Case.Perf_writeback
      ~description:"hashmap_atomic: scratch field flushed though never written"
      ~expected:Report.Unnecessary_writeback ~keys:(seq_keys 6) ~seed:32
      Hashmap_atomic.Flush_unmodified;
  ]

let backup_cases =
  [
    pmdk_case ~id:"bk-1" ~category:Case.Backup
      ~description:"ctree: root slot relinked without snapshot (sequential keys)"
      ~expected:Report.Missing_log ~build:ctree_build ~keys:(seq_keys 12) ~value_size:16 ~seed:41
      Ctree_map.Skip_log_root;
    pmdk_case ~id:"bk-2" ~category:Case.Backup
      ~description:"ctree: parent slot relinked without snapshot (random keys)"
      ~expected:Report.Missing_log ~build:ctree_build ~keys:(rand_keys ~seed:7 12) ~value_size:16
      ~seed:42 Ctree_map.Skip_log_root;
    pmdk_case ~id:"bk-3" ~category:Case.Backup
      ~description:"ctree: value pointer updated in place without snapshot"
      ~expected:Report.Missing_log ~build:ctree_build ~keys:(repeat_keys 12 ~distinct:4)
      ~value_size:16 ~seed:43 Ctree_map.Skip_log_leaf;
    pmdk_case ~id:"bk-4" ~category:Case.Backup
      ~description:"ctree: unlogged value update with large payloads"
      ~expected:Report.Missing_log ~build:ctree_build ~keys:(repeat_keys 8 ~distinct:2)
      ~value_size:256 ~seed:44 Ctree_map.Skip_log_leaf;
    pmdk_case ~id:"bk-5" ~category:Case.Backup
      ~description:"btree: leaf modified without snapshot (few keys)"
      ~expected:Report.Missing_log ~build:btree_build ~keys:(seq_keys 5) ~value_size:16 ~seed:45
      Btree_map.Skip_log_leaf_insert;
    pmdk_case ~id:"bk-6" ~category:Case.Backup
      ~description:"btree: leaf modified without snapshot (random keys)"
      ~expected:Report.Missing_log ~build:btree_build ~keys:(rand_keys ~seed:3 10) ~value_size:16
      ~seed:46 Btree_map.Skip_log_leaf_insert;
    pmdk_case ~id:"bk-7" ~category:Case.Backup
      ~description:"btree: split shrinks a node without snapshot (sorted fill)"
      ~expected:Report.Missing_log ~build:btree_build ~keys:(seq_keys 40) ~value_size:16 ~seed:47
      Btree_map.Skip_log_split_node;
    pmdk_case ~id:"bk-8" ~category:Case.Backup
      ~description:"btree: split shrinks a node without snapshot (random fill)"
      ~expected:Report.Missing_log ~build:btree_build ~keys:(rand_keys ~seed:9 48) ~value_size:16
      ~seed:48 Btree_map.Skip_log_split_node;
    pmdk_case ~id:"bk-9" ~category:Case.Backup
      ~description:"rbtree: BST parent relinked without snapshot" ~expected:Report.Missing_log
      ~build:rbtree_build ~keys:(seq_keys 8) ~value_size:16 ~seed:49 Rbtree_map.Skip_log_insert;
    pmdk_case ~id:"bk-10" ~category:Case.Backup
      ~description:"rbtree: rotation rewires nodes without snapshot (sorted fill)"
      ~expected:Report.Missing_log ~build:rbtree_build ~keys:(seq_keys 24) ~value_size:16 ~seed:50
      Rbtree_map.Skip_log_fixup;
    pmdk_case ~id:"bk-11" ~category:Case.Backup
      ~description:"rbtree: rotation rewires nodes without snapshot (random fill)"
      ~expected:Report.Missing_log ~build:rbtree_build ~keys:(rand_keys ~seed:17 24) ~value_size:16
      ~seed:51 Rbtree_map.Skip_log_fixup;
    pmdk_case ~id:"bk-12" ~category:Case.Backup
      ~description:"hashmap_tx: bucket head relinked without snapshot" ~expected:Report.Missing_log
      ~build:hashmap_build_default ~keys:(seq_keys 10) ~value_size:16 ~seed:52 Hashmap_tx.Skip_log_bucket;
    pmdk_case ~id:"bk-13" ~category:Case.Backup
      ~description:"hashmap_tx: bucket relink unlogged under heavy collisions"
      ~expected:Report.Missing_log
      ~build:(hashmap_build ~buckets:2)
      ~keys:(seq_keys 10) ~value_size:16 ~seed:53 Hashmap_tx.Skip_log_bucket;
    pmdk_case ~id:"bk-14" ~category:Case.Backup
      ~description:"hashmap_tx: element count updated without snapshot"
      ~expected:Report.Missing_log ~build:hashmap_build_default ~keys:(seq_keys 10) ~value_size:16 ~seed:54
      Hashmap_tx.Skip_log_count;
    pmdk_case ~id:"bk-15" ~category:Case.Backup
      ~description:"hashmap_tx: unlogged count with large values (bigger transactions)"
      ~expected:Report.Missing_log ~build:hashmap_build_default ~keys:(seq_keys 6) ~value_size:512 ~seed:55
      Hashmap_tx.Skip_log_count;
    pmap_case ~id:"bk-16" ~category:Case.Backup
      ~description:"mnemosyne: a store bypasses the redo log and leaks in place"
      ~expected:Report.Incomplete_tx ~sets:8 ~seed:56 Region.Skip_log_record;
    pmfs_case ~id:"bk-17" ~category:Case.Backup
      ~description:"pmfs: journal entry not persisted before the in-place metadata change"
      ~expected:Report.Not_ordered Fs.Skip_journal_flush;
    pmfs_case ~id:"bk-18" ~category:Case.Backup
      ~description:"pmfs: unpersisted journal entries on the write-heavy path"
      ~expected:Report.Not_ordered ~ops:`Write_heavy Fs.Skip_journal_flush;
    pmdk_case ~id:"bk-19" ~category:Case.Backup
      ~description:"ctree: unlogged root relink interleaved with updates"
      ~expected:Report.Missing_log ~build:ctree_build ~keys:(repeat_keys 16 ~distinct:8)
      ~value_size:32 ~seed:57 Ctree_map.Skip_log_root;
  ]

let completion_cases =
  [
    pmdk_case ~id:"cp-1" ~category:Case.Completion
      ~description:"ctree: insert performed entirely outside any transaction"
      ~expected:Report.Incomplete_tx ~build:ctree_build ~keys:(seq_keys 4) ~value_size:16 ~seed:61
      Ctree_map.No_tx;
    pmdk_case ~id:"cp-2" ~category:Case.Completion
      ~description:"btree: transaction left open (TX_END never reached)"
      ~expected:Report.Incomplete_tx ~build:btree_build ~keys:(seq_keys 3) ~value_size:16 ~seed:62
      Btree_map.No_commit;
    pmdk_case ~id:"cp-3" ~category:Case.Completion
      ~description:"hashmap_tx: transaction left open (TX_END never reached)"
      ~expected:Report.Incomplete_tx ~build:hashmap_build_default ~keys:(seq_keys 3) ~value_size:16
      ~seed:63 Hashmap_tx.No_commit;
    pool_fault_case ~id:"cp-4" ~category:Case.Completion
      ~description:"pmdk commit: modified ranges never written back (ctree workload)"
      ~expected:Report.Incomplete_tx ~build:ctree_build ~keys:(seq_keys 6) ~seed:64
      Pool.Skip_commit_writeback;
    pool_fault_case ~id:"cp-5" ~category:Case.Completion
      ~description:"pmdk commit: modified ranges never written back (btree workload)"
      ~expected:Report.Incomplete_tx ~build:btree_build ~keys:(seq_keys 6) ~seed:65
      Pool.Skip_commit_writeback;
    pool_fault_case ~id:"cp-6" ~category:Case.Completion
      ~description:"pmdk commit: writebacks issued but the fence is missing (hashmap workload)"
      ~expected:Report.Incomplete_tx ~build:hashmap_build_default ~keys:(seq_keys 6) ~seed:66
      Pool.Skip_commit_fence;
    pmfs_case ~id:"cp-7" ~category:Case.Completion
      ~description:"pmfs commit: metadata writebacks unfenced" ~expected:Report.Not_persisted
      Fs.Skip_commit_fence;
  ]

let perf_log_cases =
  [
    pmdk_case ~id:"pl-1" ~category:Case.Perf_log
      ~description:"ctree: slot snapshotted twice in one transaction"
      ~expected:Report.Duplicate_log ~build:ctree_build ~keys:(seq_keys 6) ~value_size:16 ~seed:71
      Ctree_map.Duplicate_log;
    pmdk_case ~id:"pl-2" ~category:Case.Perf_log
      ~description:"btree: leaf snapshotted twice on the insert path"
      ~expected:Report.Duplicate_log ~build:btree_build ~keys:(seq_keys 6) ~value_size:16 ~seed:72
      Btree_map.Duplicate_log_insert;
    pmdk_case ~id:"pl-3" ~category:Case.Perf_log
      ~description:"rbtree: freshly allocated node snapshotted again"
      ~expected:Report.Duplicate_log ~build:rbtree_build ~keys:(seq_keys 6) ~value_size:16 ~seed:73
      Rbtree_map.Duplicate_log;
    pmdk_case ~id:"pl-4" ~category:Case.Perf_log
      ~description:"hashmap_tx: bucket slot snapshotted twice" ~expected:Report.Duplicate_log
      ~build:hashmap_build_default ~keys:(seq_keys 6) ~value_size:16 ~seed:74 Hashmap_tx.Duplicate_log;
  ]

let synthetic =
  ordering_cases @ writeback_cases @ perf_writeback_cases @ backup_cases @ completion_cases
  @ perf_log_cases

(* --- Table 6: real bugs ------------------------------------------------------ *)

let table6 =
  [
    pmfs_case ~id:"t6-xips" ~category:Case.Perf_writeback
      ~provenance:(Case.Reproduced "PMFS xips.c:207,262")
      ~description:"pmfs: data buffer flushed twice on the XIP write path"
      ~expected:Report.Duplicate_writeback ~ops:`Write_heavy Fs.Data_double_flush;
    pmfs_case ~id:"t6-files" ~category:Case.Perf_writeback
      ~provenance:(Case.Reproduced "PMFS files.c:232")
      ~description:"pmfs: read path flushes a buffer nothing ever wrote"
      ~expected:Report.Unnecessary_writeback Fs.Flush_unmapped;
    pmdk_case ~id:"t6-rbtree" ~category:Case.Backup
      ~provenance:(Case.Reproduced "PMDK rbtree_map.c:379")
      ~description:"pmdk rbtree example: rotation modifies a node without snapshotting it"
      ~expected:Report.Missing_log ~build:rbtree_build ~keys:(seq_keys 24) ~value_size:16 ~seed:81
      Rbtree_map.Skip_log_fixup;
    pmfs_case ~id:"t6-journal" ~category:Case.Perf_writeback
      ~provenance:(Case.New_bug "PMFS journal.c:632")
      ~description:"pmfs: commit flushes the log entry again after it was already persisted"
      ~expected:Report.Duplicate_writeback Fs.Journal_double_flush;
    pmdk_case ~id:"t6-btree-log" ~category:Case.Backup
      ~provenance:(Case.New_bug "PMDK btree_map.c:201")
      ~description:"pmdk btree example: split-created sibling shrinks a node without snapshot"
      ~expected:Report.Missing_log ~build:btree_build ~keys:(seq_keys 40) ~value_size:16 ~seed:82
      Btree_map.Skip_log_split_node;
    pmdk_case ~id:"t6-btree-dup" ~category:Case.Perf_log
      ~provenance:(Case.New_bug "PMDK btree_map.c:367")
      ~description:"pmdk btree example: the same node is snapshotted twice"
      ~expected:Report.Duplicate_log ~build:btree_build ~keys:(seq_keys 6) ~value_size:16 ~seed:83
      Btree_map.Duplicate_log_insert;
  ]

(* --- Extended suite: custom low-level CCS -------------------------------- *)

module Pqueue = Pmtest_apps.Pqueue
module Plog = Pmtest_apps.Plog

let pqueue_runner bug ?observer () =
  with_session ?observer (fun session ->
      let q = Pqueue.create ~sink:(Pmtest.sink session) () in
      Pqueue.set_bug q bug;
      for i = 0 to 5 do
        Pqueue.enqueue q (Int64.of_int i);
        if i mod 2 = 1 then ignore (Pqueue.dequeue q);
        Pmtest.send_trace session
      done)

let plog_runner bug ?observer () =
  with_session ?observer (fun session ->
      let l = Plog.create ~sink:(Pmtest.sink session) () in
      Plog.set_bug l bug;
      for i = 0 to 5 do
        Plog.append l (Printf.sprintf "record-%d" i);
        Pmtest.send_trace session
      done)

let app_case ~id ~category ~description ~expected ~runner bug =
  case ~id ~category ~description ~expected ~buggy:(runner (Some bug)) ~clean:(runner None) ()

let extended =
  [
    app_case ~id:"xq-1" ~category:Case.Writeback
      ~description:"pqueue: node linked before its contents are persisted"
      ~expected:Report.Not_ordered ~runner:pqueue_runner Pqueue.Skip_node_persist;
    app_case ~id:"xq-2" ~category:Case.Writeback
      ~description:"pqueue: link to the new node never persisted" ~expected:Report.Not_persisted
      ~runner:pqueue_runner Pqueue.Skip_link_persist;
    app_case ~id:"xq-3" ~category:Case.Writeback
      ~description:"pqueue: dequeue's head advance never persisted"
      ~expected:Report.Not_persisted ~runner:pqueue_runner Pqueue.Skip_head_persist_on_dequeue;
    app_case ~id:"xl-1" ~category:Case.Ordering
      ~description:"plog: frame not persisted before the committed length covers it"
      ~expected:Report.Not_ordered ~runner:plog_runner Plog.Skip_record_persist;
    app_case ~id:"xl-2" ~category:Case.Writeback
      ~description:"plog: committed length never persisted" ~expected:Report.Not_persisted
      ~runner:plog_runner Plog.Skip_length_persist;
    app_case ~id:"xl-3" ~category:Case.Ordering
      ~description:"plog: committed length persisted before the frame (misplaced order)"
      ~expected:Report.Not_ordered ~runner:plog_runner Plog.Length_before_record;
  ]

module Nova = Pmtest_nova.Nova

let nova_runner bug ?observer () =
  with_session ?observer (fun session ->
      let fs = Nova.mkfs ~sink:(Pmtest.sink session) () in
      Nova.set_bug fs bug;
      match Nova.create fs "f" with
      | Error e -> failwith e
      | Ok ino ->
        for i = 0 to 5 do
          ignore (Nova.write fs ~ino ~pgoff:(i mod 3) (Printf.sprintf "w%d" i));
          Pmtest.send_trace session
        done)

let extended =
  extended
  @ [
      app_case ~id:"xn-1" ~category:Case.Writeback
        ~description:"nova: CoW data page not persisted before the log commits it"
        ~expected:Report.Not_ordered ~runner:nova_runner Nova.Skip_data_persist;
      app_case ~id:"xn-2" ~category:Case.Ordering
        ~description:"nova: log entry not persisted before the tail covers it"
        ~expected:Report.Not_ordered ~runner:nova_runner Nova.Skip_entry_persist;
      app_case ~id:"xn-3" ~category:Case.Writeback
        ~description:"nova: inode log tail never persisted" ~expected:Report.Not_persisted
        ~runner:nova_runner Nova.Skip_tail_persist;
    ]

let all = synthetic @ table6 @ extended

let by_category cases =
  let order =
    [ Case.Ordering; Case.Writeback; Case.Perf_writeback; Case.Backup; Case.Completion; Case.Perf_log ]
  in
  List.filter_map
    (fun cat ->
      match List.filter (fun c -> c.Case.category = cat) cases with
      | [] -> None
      | cs -> Some (cat, cs))
    order
