open Pmtest_util
open Pmtest_trace

type t = { machine : Machine.t; sink : Sink.t; file : string }

let make ~machine ~sink ~file = { machine; sink; file }
let machine t = t.machine
let sink t = t.sink
let with_sink t sink = { t with sink }
let loc t line = Loc.make ~file:t.file ~line

let emit_write t ~line ~addr ~size = Sink.write t.sink ~loc:(loc t line) ~addr ~size ()

let store_bytes t ~line ~addr b =
  Machine.store t.machine ~addr b;
  emit_write t ~line ~addr ~size:(Bytes.length b)

let store_i64 t ~line ~addr v =
  Access.set_i64 t.machine addr v;
  emit_write t ~line ~addr ~size:8

let store_int t ~line ~addr v = store_i64 t ~line ~addr (Int64.of_int v)

let store_u8 t ~line ~addr v =
  Access.set_u8 t.machine addr v;
  emit_write t ~line ~addr ~size:1

let store_string t ~line ~addr ~len s =
  Access.set_string t.machine addr ~len s;
  emit_write t ~line ~addr ~size:len

let load_i64 t ~addr = Access.get_i64 t.machine addr
let load_int t ~addr = Access.get_int t.machine addr
let load_u8 t ~addr = Access.get_u8 t.machine addr
let load_bytes t ~addr ~len = Access.get_bytes t.machine addr len
let load_string t ~addr ~len = Access.get_string t.machine addr len

let clwb t ~line ~addr ~size =
  Machine.clwb t.machine ~addr ~size;
  Sink.clwb t.sink ~loc:(loc t line) ~addr ~size ()

let sfence t ~line =
  Machine.sfence t.machine;
  Sink.sfence t.sink ~loc:(loc t line) ()

let persist_barrier t ~line ~addr ~size =
  clwb t ~line ~addr ~size;
  sfence t ~line

let ofence t ~line =
  Machine.ofence t.machine;
  Sink.ofence t.sink ~loc:(loc t line) ()

let dfence t ~line =
  Machine.dfence t.machine;
  Sink.dfence t.sink ~loc:(loc t line) ()

let gpf t ~line =
  (* One simulated device stands in for the fabric: the global persist
     barrier drains everything pending, like a dfence at machine level. *)
  Machine.dfence t.machine;
  Sink.gpf t.sink ~loc:(loc t line) ()

let tx_event t ~line ev = Sink.emit t.sink ~loc:(loc t line) (Event.Tx ev)
let checker t ~line c = Sink.emit t.sink ~loc:(loc t line) (Event.Checker c)
let control t ~line c = Sink.emit t.sink ~loc:(loc t line) (Event.Control c)
