(** Instrumented PM access: executes an operation on the simulated machine
    {e and} reports it to the active sink, with the source location the
    calling library registers for itself.

    This plays the role of the WHISPER PM-operation macros the paper
    extends (§4.3): the substrate libraries perform every PM operation
    through this module, so swapping the sink swaps the testing tool. *)

open Pmtest_util
open Pmtest_trace

type t

val make : machine:Machine.t -> sink:Sink.t -> file:string -> t
val machine : t -> Machine.t
val sink : t -> Sink.t

val with_sink : t -> Sink.t -> t
(** Same machine and file, different destination for the trace. *)

val loc : t -> int -> Loc.t
(** Location in the registered source file. *)

(** {1 Stores (emit [write])} *)

val store_bytes : t -> line:int -> addr:int -> bytes -> unit
val store_i64 : t -> line:int -> addr:int -> int64 -> unit
val store_int : t -> line:int -> addr:int -> int -> unit
val store_u8 : t -> line:int -> addr:int -> int -> unit
val store_string : t -> line:int -> addr:int -> len:int -> string -> unit

(** {1 Loads (silent — loads are not PM operations)} *)

val load_i64 : t -> addr:int -> int64
val load_int : t -> addr:int -> int
val load_u8 : t -> addr:int -> int
val load_bytes : t -> addr:int -> len:int -> bytes
val load_string : t -> addr:int -> len:int -> string

(** {1 Ordering and durability primitives} *)

val clwb : t -> line:int -> addr:int -> size:int -> unit
val sfence : t -> line:int -> unit

val persist_barrier : t -> line:int -> addr:int -> size:int -> unit
(** The paper's [persist_barrier]: [clwb; sfence]. *)

val ofence : t -> line:int -> unit
val dfence : t -> line:int -> unit

val gpf : t -> line:int -> unit
(** CXL global persist barrier: drains all pending persists (machine
    [dfence]) and emits [gpf]. *)

(** {1 Annotations relayed to the sink} *)

val tx_event : t -> line:int -> Event.tx_event -> unit
val checker : t -> line:int -> Event.checker -> unit
val control : t -> line:int -> Event.control -> unit
