(** Mutable page-indexed disjoint interval map — the in-place twin of
    {!Interval_map} used by the engine's packed fast path.

    Same observable semantics: half-open ranges, stored intervals never
    overlap, [set]/[clear] split straddlers, adjacent equal values are
    {e not} merged, and [update_range] clips surviving pieces at the
    query boundaries.  After any operation sequence, {!to_list} here
    equals [Interval_map.to_list] of the same sequence — pinned by the
    property tests in test_itree and the packed-vs-boxed fuzz contract.

    The difference is the cost model: a hash table of per-page sorted
    segment arrays mutated in place with [Array.blit], so a write is a
    hash probe plus a short memmove instead of a persistent-tree rebuild.
    Ranges are expected to be small relative to the 4 KiB page (PM ops
    span bytes to a few cache lines); an interval spanning [p] pages
    costs O(p). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool

val cardinal : 'a t -> int
(** Number of stored (maximal) intervals. *)

val set : 'a t -> lo:int -> hi:int -> 'a -> unit
(** Make every address in [\[lo, hi)] map to [v], splitting straddlers.
    Raises [Invalid_argument] if [lo >= hi]. *)

val clear : 'a t -> lo:int -> hi:int -> unit
(** Remove all bindings in [\[lo, hi)], keeping straddling fragments. *)

val find : 'a t -> int -> 'a option

val overlapping : 'a t -> lo:int -> hi:int -> (int * int * 'a) list
(** Stored intervals intersecting [\[lo, hi)], clipped, ascending. *)

val covered : 'a t -> lo:int -> hi:int -> bool
val covered_by : 'a t -> lo:int -> hi:int -> f:('a -> bool) -> bool
val exists_overlap : 'a t -> lo:int -> hi:int -> f:('a -> bool) -> bool

val update_range : 'a t -> lo:int -> hi:int -> f:('a option -> 'a option) -> unit
(** Rewrite the range in place: each covered sub-range with value [v]
    becomes [f (Some v)] (removed on [None]); each gap becomes [f None].
    [f] is applied left to right. *)

val iter : (int -> int -> 'a -> unit) -> 'a t -> unit
(** Stored intervals as [(lo, hi, v)] in address order. *)

val fold : (int -> int -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
val to_list : 'a t -> (int * int * 'a) list

val of_interval_map : 'a Interval_map.t -> 'a t
(** Copy with identical stored-interval boundaries. *)
