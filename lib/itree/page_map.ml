(* Mutable page-indexed disjoint interval map — the flat fast-path twin
   of {!Interval_map}.

   Storage is a hash table from page index (address asr [page_bits]) to a
   small sorted array of segments, each segment confined to its page.  A
   logical interval that crosses a page boundary is stored as one segment
   per page; every continuation segment carries a [jl] ("joined left")
   flag meaning "I am the same logical interval as the segment ending at
   my [lo]".  Read operations stitch flagged runs back together, so the
   observable contents — [to_list], [overlapping], [update_range] piece
   boundaries — are exactly what {!Interval_map} would hold after the
   same operation sequence, including its deliberate non-merging of
   adjacent equal values.  That exactness is what lets the packed engine
   path produce byte-identical reports to the boxed one (pinned by the
   fuzz cross-contract and the property tests in test_itree).

   Mutation is in-place: page arrays are spliced with [Array.blit], no
   balanced-tree rebuilding, no allocation beyond occasional array
   growth.  Typical engine workloads touch a handful of segments per
   page, so every operation is a hash lookup plus a short memmove. *)

let page_bits = 12
let page_size = 1 lsl page_bits
let page_of_addr a = a asr page_bits
let page_lo k = k lsl page_bits

type 'a seg = { mutable lo : int; mutable hi : int; mutable v : 'a; mutable jl : bool }
type 'a page = { mutable segs : 'a seg array; mutable n : int }

type 'a t = { pages : (int, 'a page) Hashtbl.t; mutable nsegs : int }

(* Sections touch few pages; a small table keeps per-check setup cheap
   (one map is created for every checked section). *)
let create () = { pages = Hashtbl.create 16; nsegs = 0 }
let is_empty t = t.nsegs = 0

let check_range name lo hi =
  if lo >= hi then invalid_arg ("Page_map." ^ name ^ ": empty range")

(* Exception-based lookups: [Hashtbl.find_opt] would allocate an option
   on every probe of the engine's per-op hot path. *)
let ensure_page t k =
  match Hashtbl.find t.pages k with
  | p -> p
  | exception Not_found ->
    let p = { segs = [||]; n = 0 } in
    Hashtbl.replace t.pages k p;
    p

(* First index whose segment ends strictly after [x] — the first segment
   that could intersect anything at or right of [x]. *)
let lower_bound p x =
  let lo = ref 0 and hi = ref p.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if p.segs.(mid).hi > x then hi := mid else lo := mid + 1
  done;
  !lo

let page_insert t p i seg =
  if p.n = Array.length p.segs then begin
    let cap = max 4 (2 * Array.length p.segs) in
    let segs = Array.make cap seg in
    Array.blit p.segs 0 segs 0 p.n;
    p.segs <- segs
  end;
  Array.blit p.segs i p.segs (i + 1) (p.n - i);
  p.segs.(i) <- seg;
  p.n <- p.n + 1;
  t.nsegs <- t.nsegs + 1

let page_remove t p i j =
  if j > i then begin
    Array.blit p.segs j p.segs i (p.n - j);
    t.nsegs <- t.nsegs - (j - i);
    p.n <- p.n - (j - i)
  end

(* Clear [plo, phi) inside one page, preserving straddling fragments.  A
   right fragment starts a fresh logical interval, so its [jl] drops. *)
let clear_in_page t p ~plo ~phi =
  let i = ref (lower_bound p plo) in
  if !i < p.n && p.segs.(!i).lo < plo then begin
    let s = p.segs.(!i) in
    if s.hi > phi then begin
      (* One segment covers the whole cleared span: split it. *)
      page_insert t p (!i + 1) { lo = phi; hi = s.hi; v = s.v; jl = false };
      s.hi <- plo;
      i := p.n (* nothing left to do *)
    end
    else begin
      s.hi <- plo;
      incr i
    end
  end;
  if !i < p.n then begin
    let j = ref !i in
    while !j < p.n && p.segs.(!j).hi <= phi && p.segs.(!j).lo < phi do
      incr j
    done;
    page_remove t p !i !j;
    if !i < p.n && p.segs.(!i).lo < phi then begin
      let s = p.segs.(!i) in
      s.lo <- phi;
      s.jl <- false
    end
  end

(* Fold [f] over existing pages whose index lies in [k0, k1], ascending.
   For queries spanning far more pages than are populated, walk the
   table's keys instead of the address range. *)
let iter_pages_in_range t k0 k1 f =
  let span = k1 - k0 + 1 in
  if span <= 1 + (2 * Hashtbl.length t.pages) then
    for k = k0 to k1 do
      match Hashtbl.find t.pages k with
      | p -> if p.n > 0 then f k p
      | exception Not_found -> ()
    done
  else begin
    let keys = Hashtbl.fold (fun k p acc -> if k >= k0 && k <= k1 && p.n > 0 then k :: acc else acc) t.pages [] in
    List.iter (fun k -> f k (Hashtbl.find t.pages k)) (List.sort compare keys)
  end

let clear_unchecked t ~lo ~hi =
  iter_pages_in_range t (page_of_addr lo) (page_of_addr (hi - 1)) (fun k p ->
      let base = page_lo k in
      clear_in_page t p ~plo:(max lo base) ~phi:(min hi (base + page_size)));
  (* The segment starting exactly at [hi] (if any) may have continued a
     logical interval we just truncated or removed; nothing ends at [hi]
     any more, so sever the join.  Only page-aligned starts carry [jl]. *)
  if hi land (page_size - 1) = 0 then
    match Hashtbl.find t.pages (page_of_addr hi) with
    | p ->
      let i = lower_bound p hi in
      if i < p.n && p.segs.(i).lo = hi then p.segs.(i).jl <- false
    | exception Not_found -> ()

let clear t ~lo ~hi =
  check_range "clear" lo hi;
  clear_unchecked t ~lo ~hi

(* Insert the logical interval [lo, hi) -> v over a range known to be
   clear, one segment per page, continuations flagged. *)
let insert_logical t ~lo ~hi v =
  let k0 = page_of_addr lo and k1 = page_of_addr (hi - 1) in
  for k = k0 to k1 do
    let base = page_lo k in
    let plo = max lo base and phi = min hi (base + page_size) in
    let p = ensure_page t k in
    let i = lower_bound p plo in
    page_insert t p i { lo = plo; hi = phi; v; jl = plo <> lo }
  done

let set t ~lo ~hi v =
  check_range "set" lo hi;
  clear_unchecked t ~lo ~hi;
  insert_logical t ~lo ~hi v

let find t addr =
  match Hashtbl.find t.pages (page_of_addr addr) with
  | exception Not_found -> None
  | p ->
    let i = lower_bound p addr in
    if i < p.n && p.segs.(i).lo <= addr then Some p.segs.(i).v else None

(* Walk logical (merged) pieces intersecting [lo, hi), clipped to the
   query, ascending.  [f lo hi v]. *)
let iter_logical t ~lo ~hi f =
  (* Current un-emitted run, unclipped bounds. *)
  let cur_lo = ref 0 and cur_hi = ref 0 and cur_v = ref None in
  let flush () =
    match !cur_v with
    | None -> ()
    | Some v ->
      f (max !cur_lo lo) (min !cur_hi hi) v;
      cur_v := None
  in
  iter_pages_in_range t (page_of_addr lo) (page_of_addr (hi - 1)) (fun _ p ->
      let i = ref (lower_bound p lo) in
      while !i < p.n && p.segs.(!i).lo < hi do
        let s = p.segs.(!i) in
        (match !cur_v with
        | Some _ when s.jl && s.lo = !cur_hi -> cur_hi := s.hi
        | _ ->
          flush ();
          cur_lo := s.lo;
          cur_hi := s.hi;
          cur_v := Some s.v);
        incr i
      done);
  flush ()

let overlapping t ~lo ~hi =
  check_range "overlapping" lo hi;
  let acc = ref [] in
  iter_logical t ~lo ~hi (fun l h v -> acc := (l, h, v) :: !acc);
  List.rev !acc

let covered_by t ~lo ~hi ~f =
  check_range "covered_by" lo hi;
  let rec walk cursor = function
    | [] -> cursor >= hi
    | (k, h, v) :: rest ->
      if k > cursor then false else if not (f v) then false else walk (max cursor h) rest
  in
  walk lo (overlapping t ~lo ~hi)

let covered t ~lo ~hi = covered_by t ~lo ~hi ~f:(fun _ -> true)

let exists_overlap t ~lo ~hi ~f =
  check_range "exists_overlap" lo hi;
  let found = ref false in
  iter_logical t ~lo ~hi (fun _ _ v -> if (not !found) && f v then found := true);
  !found

let update_range t ~lo ~hi ~f =
  check_range "update_range" lo hi;
  let pieces = overlapping t ~lo ~hi in
  clear_unchecked t ~lo ~hi;
  (* Mirror Interval_map.update_range: f over pieces and the gaps between
     them, left to right; each surviving piece is re-stored clipped at
     the query boundaries (fragmentation is observable and must match). *)
  let store k h = function
    | None -> ()
    | Some v' -> insert_logical t ~lo:k ~hi:h v'
  in
  let cursor = ref lo in
  List.iter
    (fun (k, h, v) ->
      if k > !cursor then store !cursor k (f None);
      store k h (f (Some v));
      cursor := h)
    pieces;
  if !cursor < hi then store !cursor hi (f None)

let iter f t =
  let keys = List.sort compare (Hashtbl.fold (fun k p acc -> if p.n > 0 then k :: acc else acc) t.pages []) in
  let cur_lo = ref 0 and cur_hi = ref 0 and cur_v = ref None in
  let flush () =
    match !cur_v with
    | None -> ()
    | Some v ->
      f !cur_lo !cur_hi v;
      cur_v := None
  in
  List.iter
    (fun k ->
      let p = Hashtbl.find t.pages k in
      for i = 0 to p.n - 1 do
        let s = p.segs.(i) in
        match !cur_v with
        | Some _ when s.jl && s.lo = !cur_hi -> cur_hi := s.hi
        | _ ->
          flush ();
          cur_lo := s.lo;
          cur_hi := s.hi;
          cur_v := Some s.v
      done)
    keys;
  flush ()

let fold f t acc =
  let acc = ref acc in
  iter (fun lo hi v -> acc := f lo hi v !acc) t;
  !acc

let to_list t = List.rev (fold (fun lo hi v acc -> (lo, hi, v) :: acc) t [])

let cardinal t =
  let n = ref 0 in
  iter (fun _ _ _ -> incr n) t;
  !n

let of_interval_map m =
  let t = create () in
  Interval_map.iter (fun lo hi v -> insert_logical t ~lo ~hi v) m;
  t
