module Machine = Pmtest_pmem.Machine
module Instr = Pmtest_pmem.Instr
module Access = Pmtest_pmem.Access
module Event = Pmtest_trace.Event

let source_file = "nova/nova.c"
let magic = 0x4E4F5641_4F430001L
let page_size = 256

(* Layout.
   super (64B) @0: magic(8) device size(8) ninodes(8)
                   log area offset(8) data area offset(8)
   inode (64B):    valid(8) log_head(8) log_tail(8)
     — head is the fixed start of the inode's log region; tail is the
       commit point, advanced (and persisted) after each entry.
   log entry (64B): type(8) pgoff(8) block(8) ino(8) name(32)
     types: 1 = file write, 2 = dentry add, 3 = dentry delete.
   Inode 0 is the root directory: its log holds the dentry entries.
   Data pages are copy-on-write; superseded pages leak until a GC that is
   out of scope here (as NOVA's is a background task). *)

let super_size = 64
let inode_size = 64
let entry_size = 64
let entries_per_inode = 64
let log_region = entry_size * entries_per_inode

type bug = Skip_data_persist | Skip_entry_persist | Skip_tail_persist | Valid_before_init

type t = {
  instr : Instr.t;
  ninodes : int;
  log_off : int;
  data_off : int;
  (* Volatile state, rebuilt on mount. *)
  page_index : (int, (int, int) Hashtbl.t) Hashtbl.t; (* ino -> pgoff -> block *)
  dir : (string, int) Hashtbl.t;
  mutable data_top : int;
  mutable bug : bug option;
}

let machine t = Instr.machine t.instr
let set_bug t b = t.bug <- b

let inode_off _t ino = super_size + (ino * inode_size)
let inode_valid t ino = Access.get_int (machine t) (inode_off t ino)
let inode_head t ino = Access.get_int (machine t) (inode_off t ino + 8)
let inode_tail t ino = Access.get_int (machine t) (inode_off t ino + 16)
let region_start t ino = t.log_off + (ino * log_region)
let block_addr t b = t.data_off + (b * page_size)

let entry_fields t e =
  let m = machine t in
  ( Access.get_int m e,
    Access.get_int m (e + 8),
    Access.get_int m (e + 16),
    Access.get_int m (e + 24),
    Access.get_string m (e + 32) 32 )

let geometry ~inodes ~size =
  let log_off = super_size + (inodes * inode_size) in
  let data_off = (log_off + (inodes * log_region) + page_size - 1) / page_size * page_size in
  if size <= data_off + page_size then invalid_arg "Nova: device too small";
  (log_off, data_off)

let page_capacity t = (Machine.size (machine t) - t.data_off) / page_size

let index_for t ino =
  match Hashtbl.find_opt t.page_index ino with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 16 in
    Hashtbl.replace t.page_index ino h;
    h

(* Replay one inode's committed log into the volatile structures. *)
let replay t ino =
  let head = inode_head t ino and tail = inode_tail t ino in
  let e = ref head in
  while !e < tail do
    (match entry_fields t !e with
    | 1, pgoff, block, _, _ -> Hashtbl.replace (index_for t ino) pgoff block
    | 2, _, _, child, name -> Hashtbl.replace t.dir name child
    | 3, _, _, _, name -> Hashtbl.remove t.dir name
    | _ -> ());
    e := !e + entry_size
  done

let rebuild t =
  Hashtbl.reset t.page_index;
  Hashtbl.reset t.dir;
  for ino = 0 to t.ninodes - 1 do
    if inode_valid t ino = 1 then replay t ino
  done;
  (* Conservative data bump pointer: past every referenced page. *)
  let top = ref 0 in
  Hashtbl.iter (fun _ h -> Hashtbl.iter (fun _ b -> top := max !top (b + 1)) h) t.page_index;
  t.data_top <- !top

let mkfs ?(track_versions = false) ?(inodes = 32) ?(size = 1 lsl 20) ~sink () =
  let log_off, data_off = geometry ~inodes ~size in
  let machine = Machine.create ~track_versions ~size () in
  let instr = Instr.make ~machine ~sink ~file:source_file in
  let t =
    {
      instr;
      ninodes = inodes;
      log_off;
      data_off;
      page_index = Hashtbl.create 16;
      dir = Hashtbl.create 16;
      data_top = 0;
      bug = None;
    }
  in
  Instr.store_i64 instr ~line:10 ~addr:0 magic;
  Instr.store_i64 instr ~line:11 ~addr:8 (Int64.of_int size);
  Instr.store_i64 instr ~line:12 ~addr:16 (Int64.of_int inodes);
  Instr.store_i64 instr ~line:13 ~addr:24 (Int64.of_int log_off);
  Instr.store_i64 instr ~line:14 ~addr:32 (Int64.of_int data_off);
  Instr.persist_barrier instr ~line:15 ~addr:0 ~size:40;
  (* Root directory inode. *)
  let r = region_start t 0 in
  Instr.store_i64 instr ~line:16 ~addr:(inode_off t 0) 1L;
  Instr.store_i64 instr ~line:17 ~addr:(inode_off t 0 + 8) (Int64.of_int r);
  Instr.store_i64 instr ~line:18 ~addr:(inode_off t 0 + 16) (Int64.of_int r);
  Instr.persist_barrier instr ~line:19 ~addr:(inode_off t 0) ~size:24;
  t

let mount ~machine ~sink =
  if Access.get_i64 machine 0 <> magic then invalid_arg "Nova.mount: bad magic";
  let instr = Instr.make ~machine ~sink ~file:source_file in
  let inodes = Access.get_int machine 16 in
  let t =
    {
      instr;
      ninodes = inodes;
      log_off = Access.get_int machine 24;
      data_off = Access.get_int machine 32;
      page_index = Hashtbl.create 16;
      dir = Hashtbl.create 16;
      data_top = 0;
      bug = None;
    }
  in
  rebuild t;
  t

(* Append an entry to [ino]'s log and commit it by advancing the
   persisted tail — the heart of the log-structured discipline. *)
let append_entry t ~ino ~etype ~pgoff ~block ~child ~name =
  let tail = inode_tail t ino in
  if tail + entry_size > region_start t ino + log_region then Error "inode log full"
  else begin
    Instr.store_i64 t.instr ~line:30 ~addr:tail (Int64.of_int etype);
    Instr.store_i64 t.instr ~line:31 ~addr:(tail + 8) (Int64.of_int pgoff);
    Instr.store_i64 t.instr ~line:32 ~addr:(tail + 16) (Int64.of_int block);
    Instr.store_i64 t.instr ~line:33 ~addr:(tail + 24) (Int64.of_int child);
    Instr.store_string t.instr ~line:34 ~addr:(tail + 32) ~len:32 name;
    if t.bug <> Some Skip_entry_persist then
      Instr.persist_barrier t.instr ~line:35 ~addr:tail ~size:entry_size;
    let tail_slot = inode_off t ino + 16 in
    Instr.store_i64 t.instr ~line:36 ~addr:tail_slot (Int64.of_int (tail + entry_size));
    if t.bug <> Some Skip_tail_persist then
      Instr.persist_barrier t.instr ~line:37 ~addr:tail_slot ~size:8;
    (* The entry must be durable before the tail covers it; the tail
       itself must be durable for the op to be committed. *)
    Instr.checker t.instr ~line:38
      Event.(Is_ordered_before { a_addr = tail; a_size = entry_size; b_addr = tail_slot; b_size = 8 });
    Instr.checker t.instr ~line:39 Event.(Is_persist { addr = tail_slot; size = 8 });
    Ok tail
  end

let lookup t name = Hashtbl.find_opt t.dir name
let readdir t = List.sort compare (Hashtbl.fold (fun n i acc -> (n, i) :: acc) t.dir [])

let create t name =
  if String.length name > 31 then Error "name too long"
  else if name = "" then Error "empty name"
  else if lookup t name <> None then Error "file exists"
  else begin
    let rec free i =
      if i >= t.ninodes then None else if inode_valid t i = 0 then Some i else free (i + 1)
    in
    match free 1 with
    | None -> Error "no free inodes"
    | Some ino ->
      (* Initialise the inode durably before the dentry can commit it.
         Within the line, head/tail go first and the valid bit last: the
         line can be evicted between stores, so publishing valid first
         risks a crash image holding a valid inode with a zero log. *)
      let r = region_start t ino in
      if t.bug = Some Valid_before_init then
        Instr.store_i64 t.instr ~line:50 ~addr:(inode_off t ino) 1L;
      Instr.store_i64 t.instr ~line:51 ~addr:(inode_off t ino + 8) (Int64.of_int r);
      Instr.store_i64 t.instr ~line:52 ~addr:(inode_off t ino + 16) (Int64.of_int r);
      if t.bug <> Some Valid_before_init then
        Instr.store_i64 t.instr ~line:50 ~addr:(inode_off t ino) 1L;
      Instr.persist_barrier t.instr ~line:53 ~addr:(inode_off t ino) ~size:24;
      (match append_entry t ~ino:0 ~etype:2 ~pgoff:0 ~block:0 ~child:ino ~name with
      | Error e -> Error e
      | Ok _ ->
        (* The inode must be durable before the dentry commits it. *)
        Instr.checker t.instr ~line:54
          Event.(
            Is_ordered_before
              { a_addr = inode_off t ino; a_size = 24; b_addr = inode_off t 0 + 16; b_size = 8 });
        Hashtbl.replace t.dir name ino;
        Ok ino)
  end

let unlink t name =
  match lookup t name with
  | None -> Error "no such file"
  | Some ino -> (
    match append_entry t ~ino:0 ~etype:3 ~pgoff:0 ~block:0 ~child:ino ~name with
    | Error e -> Error e
    | Ok _ ->
      Hashtbl.remove t.dir name;
      (* Invalidate the inode only after the dentry removal committed; a
         crash in between merely leaks the inode (NOVA's GC territory). *)
      Instr.store_i64 t.instr ~line:60 ~addr:(inode_off t ino) 0L;
      Instr.persist_barrier t.instr ~line:61 ~addr:(inode_off t ino) ~size:8;
      Hashtbl.remove t.page_index ino;
      Ok ())

let alloc_page t =
  if t.data_top >= page_capacity t then Error "out of data pages"
  else begin
    let b = t.data_top in
    t.data_top <- b + 1;
    Ok b
  end

let write t ~ino ~pgoff data =
  if String.length data > page_size then Error "write exceeds one page"
  else if ino <= 0 || ino >= t.ninodes || inode_valid t ino <> 1 then Error "bad inode"
  else begin
    match alloc_page t with
    | Error e -> Error e
    | Ok block ->
      (* Copy-on-write: build the new page (old contents overlaid with the
         new data), persist it, then commit it through the log. *)
      let addr = block_addr t block in
      let page = Bytes.make page_size '\000' in
      (match Hashtbl.find_opt (index_for t ino) pgoff with
      | Some old -> Bytes.blit (Instr.load_bytes t.instr ~addr:(block_addr t old) ~len:page_size) 0 page 0 page_size
      | None -> ());
      Bytes.blit_string data 0 page 0 (String.length data);
      Instr.store_bytes t.instr ~line:70 ~addr page;
      if t.bug <> Some Skip_data_persist then
        Instr.persist_barrier t.instr ~line:71 ~addr ~size:page_size;
      match append_entry t ~ino ~etype:1 ~pgoff ~block ~child:0 ~name:"" with
      | Error e -> Error e
      | Ok _ ->
        (* The data page must be durable before the tail committed the
           entry that references it. *)
        Instr.checker t.instr ~line:72
          Event.(
            Is_ordered_before
              {
                a_addr = addr;
                a_size = page_size;
                b_addr = inode_off t ino + 16;
                b_size = 8;
              });
        Hashtbl.replace (index_for t ino) pgoff block;
        Ok ()
  end

let read t ~ino ~pgoff =
  if ino <= 0 || ino >= t.ninodes || inode_valid t ino <> 1 then Error "bad inode"
  else
    match Hashtbl.find_opt (index_for t ino) pgoff with
    | None -> Ok (String.make page_size '\000')
    | Some block -> Ok (Bytes.to_string (Instr.load_bytes t.instr ~addr:(block_addr t block) ~len:page_size))

let file_pages t ~ino =
  match Hashtbl.find_opt t.page_index ino with Some h -> Hashtbl.length h | None -> 0

(* --- Introspection (for external fsck-style checkers) ---------------------- *)

let ninodes t = t.ninodes
let is_valid t ~ino = inode_valid t ino = 1

let page_map t ~ino =
  match Hashtbl.find_opt t.page_index ino with
  | None -> []
  | Some h -> List.sort compare (Hashtbl.fold (fun pgoff b acc -> (pgoff, b) :: acc) h [])

let check_consistent t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let cap = page_capacity t in
  for ino = 0 to t.ninodes - 1 do
    if inode_valid t ino = 1 then begin
      let head = inode_head t ino and tail = inode_tail t ino in
      let r = region_start t ino in
      if head <> r then err "inode %d log head corrupt" ino;
      if tail < head || tail > r + log_region || (tail - head) mod entry_size <> 0 then
        err "inode %d log tail corrupt" ino
      else begin
        let e = ref head in
        while !e < tail do
          (match entry_fields t !e with
          | 1, pgoff, block, _, _ ->
            if ino = 0 then err "write entry in the directory log";
            if pgoff < 0 then err "inode %d: negative page offset" ino;
            if block < 0 || block >= cap then err "inode %d: block %d out of bounds" ino block
          | (2 | 3), _, _, child, name ->
            if ino <> 0 then err "dentry entry in a file log (inode %d)" ino;
            if name = "" then err "empty dentry name";
            if child <= 0 || child >= t.ninodes then err "dentry references bad inode %d" child
          | ty, _, _, _, _ -> err "inode %d: bad entry type %d" ino ty);
          e := !e + entry_size
        done
      end
    end
  done;
  (* Directory entries must reference valid inodes. *)
  Hashtbl.iter
    (fun name ino ->
      if ino <= 0 || ino >= t.ninodes || inode_valid t ino <> 1 then
        err "dentry %s references dead inode %d" name ino)
    t.dir;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
