(** A NOVA-style log-structured PM file system (Xu & Swanson, FAST'16),
    simplified: per-inode append-only metadata logs with a persisted tail
    pointer as the commit point, copy-on-write data pages, and volatile
    per-inode page indexes rebuilt by replaying the logs on mount.

    This is the third crash-consistency discipline in the repository
    (after PMDK's undo log and Mnemosyne's redo log): nothing is ever
    updated in place — a write allocates a fresh data page, persists it,
    appends a log entry describing it, persists the entry, and only then
    persists the inode's advanced log tail. A crash before the tail
    update simply discards the trailing entries.

    Per-operation commit protocol (annotated with the low-level
    checkers):

    {v  data page  <p  log entry  <p  inode tail  v}

    Bug switches remove each of the three persists. *)

open Pmtest_trace
module Machine = Pmtest_pmem.Machine

type t

type bug =
  | Skip_data_persist  (** Log may commit a torn data page. *)
  | Skip_entry_persist  (** Tail may commit a torn log entry. *)
  | Skip_tail_persist  (** Committed operations may vanish. *)
  | Valid_before_init
      (** [create] stores the inode's valid bit before head/tail. All
          three live on one cache line under a single persist barrier,
          so the trace checkers see nothing wrong — but the line can be
          evicted between the stores, and a crash then leaves a valid
          inode with an uninitialised log. Only reachable by crash-state
          enumeration (the crashfs harness found it in the original
          store order). *)

val source_file : string
val page_size : int

val mkfs : ?track_versions:bool -> ?inodes:int -> ?size:int -> sink:Sink.t -> unit -> t
val mount : machine:Machine.t -> sink:Sink.t -> t
(** Replays every inode log to rebuild the volatile indexes. *)

val machine : t -> Machine.t
val set_bug : t -> bug option -> unit

val create : t -> string -> (int, string) result
val lookup : t -> string -> int option
val unlink : t -> string -> (unit, string) result
val readdir : t -> (string * int) list

val write : t -> ino:int -> pgoff:int -> string -> (unit, string) result
(** Copy-on-write write of one page (at most {!page_size} bytes) at page
    offset [pgoff]. *)

val read : t -> ino:int -> pgoff:int -> (string, string) result
(** The page's current contents ([page_size] bytes, zero-filled if never
    written). *)

val file_pages : t -> ino:int -> int
(** Number of distinct pages the file has written. *)

val check_consistent : t -> (unit, string) result
(** Every inode's log parses within bounds up to its committed tail,
    referenced data pages are in bounds, directory entries reference
    live inodes, and replay is deterministic. *)

(** {1 Introspection}

    Views for external fsck-style checkers (the crashfs recovery harness
    layers cross-structure invariants on top of {!check_consistent}). *)

val ninodes : t -> int

val is_valid : t -> ino:int -> bool
(** Whether the on-media inode is marked valid. A valid inode that no
    directory entry references is {e not} an inconsistency: NOVA's
    unlink commits the dentry removal before invalidating the inode, so
    a crash in between merely leaks it. *)

val page_map : t -> ino:int -> (int * int) list
(** The replayed [(pgoff, block)] mapping of an inode, sorted. *)
