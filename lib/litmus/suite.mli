(** The curated litmus suite: store-ordering, fence-elision and
    epoch-overlap shapes for every persistency model, plus the CXL
    visibility-before-durability shapes. Each entry is validated by
    {!Litmus.run_test} against the engine, the oracle and the crashtest
    harness at once. *)

open Pmtest_model

val x86 : Litmus.t list
val hops : Litmus.t list
val eadr : Litmus.t list
val cxl : Litmus.t list

val all : Litmus.t list
(** Every test, grouped by model, x86 first. *)

val for_model : Model.kind -> Litmus.t list
val find : string -> Litmus.t option

val slice : lo:int -> hi:int -> Litmus.t list
(** Tests at indices [\[lo, hi)] of {!all} — the farm's chunkable view
    of the suite ({!all} has a fixed order, so a [(lo, hi)] pair names
    the same tests on every host running the same build). Raises
    [Invalid_argument] when [hi < lo]. *)
