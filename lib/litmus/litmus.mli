(** Axiomatic litmus tests for the persistency models.

    A litmus test is a tiny straight-line program over a few cache
    lines plus its expected outcomes under one persistency model:

    - {e checker expectations} — the verdict ([pass]/[FAIL]) of each
      embedded [isPersist]/[isOrderedBefore] assertion;
    - {e state expectations} — post-crash memory states that must be
      reachable ({e allowed}) or unreachable ({e forbidden}), either at
      some crash point ({!Any}) or when crashing after the last event
      ({!Final}).

    The runner validates every expectation against three independent
    implementations at once: the checking {e engine} (interval
    deduction), the {e oracle} (exhaustive per-model crash-state
    enumeration) and the {e crashtest} harness (step-wise crash
    injection on the simulated device). A model implementation that
    admits a forbidden state or loses an allowed one fails the test. *)

open Pmtest_model
open Pmtest_trace
module Gen = Pmtest_fuzz.Gen
module Oracle = Pmtest_fuzz.Oracle

type expect = Allowed | Forbidden
type scope = Any | Final

type state_check = {
  expect : expect;
  scope : scope;
  cells : (int * int) list;
      (** [(line, ordinal)] pairs: cache line [line] holds the payload
          of the [ordinal]-th write of the program (1-based, program
          order), or the initial zeroes for ordinal 0. *)
}

type checker_expect = { index : int; pass : bool }

type t = {
  name : string;
  model : Model.kind;
  doc : string;
  events : Event.t array;
  states : state_check list;
  checkers : checker_expect list;
  lines : int;  (** Cache lines of simulated PM the program touches. *)
}

val payload_of_ordinal : int -> char
(** The byte value the [n]-th write stores (the oracle's payload
    convention); ordinal 0 is the zeroed initial content. *)

(** {1 Building tests}

    Programs are written against a builder: [w] appends a line-aligned
    write (returning its 1-based ordinal), [clwb]/[sfence]/[ofence]/
    [dfence]/[gpf] append the corresponding op, [check_*] embed an
    assertion with its expected verdict, and [allowed]/[forbidden]
    record state expectations. *)

type builder

val w : builder -> int -> int
(** [w b line] writes {!Gen.write_size} bytes at the start of [line];
    returns the write's ordinal for use in state expectations. *)

val clwb : builder -> int -> unit
val sfence : builder -> unit
val ofence : builder -> unit
val dfence : builder -> unit
val gpf : builder -> unit
val check_persist : builder -> int -> pass:bool -> unit
val check_ordered : builder -> int -> int -> pass:bool -> unit
val allowed : builder -> (int * int) list -> unit
val forbidden : builder -> (int * int) list -> unit
val allowed_final : builder -> (int * int) list -> unit
val forbidden_final : builder -> (int * int) list -> unit

val make : name:string -> model:Model.kind -> doc:string -> (builder -> unit) -> t
(** Raises [Invalid_argument] if the program uses an op that is invalid
    under [model]. *)

val program_of : t -> Gen.program
val with_events : t -> Event.t array -> t
(** The same expectations over a replacement event array (used by the
    save/load round-trip property). *)

(** {1 Running tests} *)

type failure = { leg : string; message : string }
(** [leg] is ["engine"], ["oracle"] or ["crashtest"]. *)

type outcome = { test : t; failures : failure list }

val passed : outcome -> bool

val run_test : ?sim:(Gen.program -> Oracle.sim) -> t -> outcome
(** Run one test against all three implementations. [sim] substitutes
    the oracle leg's model simulation (fresh per call) — deliberately
    broken simulations must be caught, which is how the harness itself
    is validated. *)

val run_suite : ?models:Model.kind list -> t list -> outcome list

val outcomes_digest : outcome list -> string
(** Hex digest over test names, verdicts and per-leg failure messages,
    in order — the farm coordinator compares it across job attempts
    over the same {!Suite.slice}. *)
