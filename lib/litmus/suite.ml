(* The curated litmus suite. Line letters [a]-[d] name the first four
   cache lines; write ordinals come back from [Litmus.w] so state
   expectations read off the program text. Shapes covered: store
   ordering (message passing with and without the ordering op),
   fence elision (what a missing flush/fence/barrier makes reachable),
   epoch overlap (HOPS ofence batches), and the CXL split between
   immediate visibility and gpf-deferred durability. *)

open Pmtest_model
module L = Litmus

let a = 0
let b = 1
let c = 2

let t ~name ~model ~doc f = L.make ~name ~model ~doc f

(* {1 x86: clwb + sfence} *)

let x86 =
  [
    t ~name:"x86-store-alone" ~model:Model.X86
      ~doc:"a bare store stays in the cache: durable or not, nothing is promised"
      (fun l ->
        let wa = L.w l a in
        L.check_persist l a ~pass:false;
        L.allowed_final l [ (a, 0) ];
        L.allowed_final l [ (a, wa) ]);
    t ~name:"x86-flush-fence-durable" ~model:Model.X86
      ~doc:"clwb + sfence closes the persist interval: the store is durable"
      (fun l ->
        let wa = L.w l a in
        L.clwb l a;
        L.sfence l;
        L.check_persist l a ~pass:true;
        L.forbidden_final l [ (a, 0) ];
        L.allowed_final l [ (a, wa) ]);
    t ~name:"x86-flush-no-fence" ~model:Model.X86
      ~doc:"clwb without the fence promises nothing (fence elision)"
      (fun l ->
        let wa = L.w l a in
        L.clwb l a;
        L.check_persist l a ~pass:false;
        L.allowed_final l [ (a, 0) ];
        L.allowed_final l [ (a, wa) ]);
    t ~name:"x86-mp-fenced" ~model:Model.X86
      ~doc:"message passing: flag flushed after the data's fence can never lead it"
      (fun l ->
        let _wa = L.w l a in
        L.clwb l a;
        L.sfence l;
        let wb = L.w l b in
        L.clwb l b;
        L.sfence l;
        L.check_ordered l a b ~pass:true;
        L.forbidden l [ (a, 0); (b, wb) ];
        L.forbidden_final l [ (a, 0) ];
        L.forbidden_final l [ (b, 0) ]);
    t ~name:"x86-mp-unfenced" ~model:Model.X86
      ~doc:"without the intermediate fence the flag can persist before the data"
      (fun l ->
        let _wa = L.w l a in
        let wb = L.w l b in
        L.clwb l b;
        L.sfence l;
        L.check_ordered l a b ~pass:false;
        L.allowed l [ (a, 0); (b, wb) ]);
    t ~name:"x86-clwb-snapshot" ~model:Model.X86
      ~doc:"clwb captures the line's content at flush time, not at fence time"
      (fun l ->
        let w1 = L.w l a in
        L.clwb l a;
        let w2 = L.w l a in
        L.sfence l;
        L.check_persist l a ~pass:false;
        L.forbidden_final l [ (a, 0) ];
        L.allowed_final l [ (a, w1) ];
        L.allowed_final l [ (a, w2) ]);
    t ~name:"x86-overwrite-flushed" ~model:Model.X86
      ~doc:"flushing after the last store persists the final value only"
      (fun l ->
        let w1 = L.w l a in
        let w2 = L.w l a in
        L.clwb l a;
        L.sfence l;
        L.check_persist l a ~pass:true;
        L.allowed l [ (a, w1) ];
        L.forbidden_final l [ (a, w1) ];
        L.forbidden_final l [ (a, 0) ];
        L.allowed_final l [ (a, w2) ]);
    t ~name:"x86-independent-lines" ~model:Model.X86
      ~doc:"unflushed lines evict independently: both orders reachable"
      (fun l ->
        let wa = L.w l a in
        let wb = L.w l b in
        L.check_ordered l a b ~pass:false;
        L.allowed l [ (a, 0); (b, wb) ];
        L.allowed l [ (a, wa); (b, 0) ]);
  ]

(* {1 HOPS: ofence orders, dfence drains} *)

let hops =
  [
    t ~name:"hops-ofence-orders" ~model:Model.Hops
      ~doc:"an ofence between two stores orders their persists"
      (fun l ->
        let _wa = L.w l a in
        L.ofence l;
        let wb = L.w l b in
        L.dfence l;
        L.check_ordered l a b ~pass:true;
        L.forbidden l [ (a, 0); (b, wb) ]);
    t ~name:"hops-same-epoch-unordered" ~model:Model.Hops
      ~doc:"stores in one epoch persist in any order"
      (fun l ->
        let wa = L.w l a in
        let wb = L.w l b in
        L.dfence l;
        L.check_ordered l a b ~pass:false;
        L.allowed l [ (a, 0); (b, wb) ];
        L.allowed l [ (a, wa); (b, 0) ]);
    t ~name:"hops-dfence-durable" ~model:Model.Hops
      ~doc:"dfence drains everything: the store is durable after it"
      (fun l ->
        let wa = L.w l a in
        L.dfence l;
        L.check_persist l a ~pass:true;
        L.forbidden_final l [ (a, 0) ];
        L.allowed_final l [ (a, wa) ]);
    t ~name:"hops-ofence-not-durable" ~model:Model.Hops
      ~doc:"ofence orders but does not drain (fence elision of the dfence)"
      (fun l ->
        let wa = L.w l a in
        L.ofence l;
        L.check_persist l a ~pass:false;
        L.allowed_final l [ (a, 0) ];
        L.allowed_final l [ (a, wa) ]);
    t ~name:"hops-epoch-overlap" ~model:Model.Hops
      ~doc:"three epochs: a later epoch in flight implies every earlier one is durable"
      (fun l ->
        let wa = L.w l a in
        L.ofence l;
        let wb = L.w l b in
        L.ofence l;
        let wc = L.w l c in
        L.dfence l;
        L.check_ordered l a c ~pass:true;
        L.forbidden l [ (a, 0); (c, wc) ];
        L.forbidden l [ (b, 0); (c, wc) ];
        L.allowed l [ (a, wa); (b, 0) ];
        L.allowed l [ (a, wa); (b, wb); (c, 0) ]);
    t ~name:"hops-epoch-tail-unordered" ~model:Model.Hops
      ~doc:"stores after the last ofence share an epoch and stay unordered"
      (fun l ->
        let _wa = L.w l a in
        L.ofence l;
        let _wb = L.w l b in
        let wc = L.w l c in
        L.dfence l;
        L.check_ordered l b c ~pass:false;
        L.allowed l [ (b, 0); (c, wc) ];
        L.forbidden l [ (a, 0); (c, wc) ]);
  ]

(* {1 eADR: caches are persistent} *)

let eadr =
  [
    t ~name:"eadr-store-durable" ~model:Model.Eadr
      ~doc:"a store is durable the moment it executes"
      (fun l ->
        let wa = L.w l a in
        L.check_persist l a ~pass:true;
        L.forbidden_final l [ (a, 0) ];
        L.allowed_final l [ (a, wa) ]);
    t ~name:"eadr-program-order" ~model:Model.Eadr
      ~doc:"persists follow program order: the flag never leads the data"
      (fun l ->
        let _wa = L.w l a in
        let wb = L.w l b in
        L.check_ordered l a b ~pass:true;
        L.forbidden l [ (a, 0); (b, wb) ]);
    t ~name:"eadr-overwrite" ~model:Model.Eadr
      ~doc:"the old value is reachable only before the overwrite executes"
      (fun l ->
        let w1 = L.w l a in
        let w2 = L.w l a in
        L.check_persist l a ~pass:true;
        L.allowed l [ (a, w1) ];
        L.forbidden_final l [ (a, w1) ];
        L.allowed_final l [ (a, w2) ]);
    t ~name:"eadr-chain" ~model:Model.Eadr
      ~doc:"every prefix of the store sequence is a crash state; nothing else is"
      (fun l ->
        let wa = L.w l a in
        let wb = L.w l b in
        let wc = L.w l c in
        L.check_ordered l a c ~pass:true;
        L.forbidden l [ (b, 0); (c, wc) ];
        L.allowed l [ (a, wa); (b, wb); (c, 0) ];
        L.forbidden_final l [ (c, 0) ]);
  ]

(* {1 CXL: visible at once, durable at gpf} *)

let cxl =
  [
    t ~name:"cxl-store-not-durable" ~model:Model.Cxl
      ~doc:"a store is visible to every host immediately but durable only after gpf"
      (fun l ->
        let wa = L.w l a in
        L.check_persist l a ~pass:false;
        L.allowed_final l [ (a, 0) ];
        L.allowed_final l [ (a, wa) ]);
    t ~name:"cxl-gpf-durable" ~model:Model.Cxl
      ~doc:"the global persist barrier drains every pending persist"
      (fun l ->
        let wa = L.w l a in
        L.gpf l;
        L.check_persist l a ~pass:true;
        L.forbidden_final l [ (a, 0) ];
        L.allowed_final l [ (a, wa) ]);
    t ~name:"cxl-visibility-vs-durability" ~model:Model.Cxl
      ~doc:"between barriers both stores are visible yet either may be lost"
      (fun l ->
        let wa = L.w l a in
        let wb = L.w l b in
        L.check_ordered l a b ~pass:false;
        L.allowed l [ (a, 0); (b, wb) ];
        L.allowed l [ (a, wa); (b, 0) ];
        L.gpf l;
        L.forbidden_final l [ (a, 0) ];
        L.forbidden_final l [ (b, 0) ]);
    t ~name:"cxl-gpf-orders-batches" ~model:Model.Cxl
      ~doc:"a gpf between two stores orders their durability"
      (fun l ->
        let _wa = L.w l a in
        L.gpf l;
        let wb = L.w l b in
        L.gpf l;
        L.check_ordered l a b ~pass:true;
        L.forbidden l [ (a, 0); (b, wb) ]);
    t ~name:"cxl-gpf-partial-batch" ~model:Model.Cxl
      ~doc:"only stores before the barrier are durable; the tail stays pending"
      (fun l ->
        let wa = L.w l a in
        L.gpf l;
        let wb = L.w l b in
        L.check_persist l a ~pass:true;
        L.check_persist l b ~pass:false;
        L.allowed_final l [ (a, wa); (b, 0) ];
        L.allowed_final l [ (a, wa); (b, wb) ];
        L.forbidden_final l [ (a, 0) ]);
    t ~name:"cxl-overwrite-before-gpf" ~model:Model.Cxl
      ~doc:"the barrier persists the newest value; older versions die with it"
      (fun l ->
        let w1 = L.w l a in
        let w2 = L.w l a in
        L.gpf l;
        L.check_persist l a ~pass:true;
        L.allowed l [ (a, w1) ];
        L.forbidden_final l [ (a, w1) ];
        L.forbidden_final l [ (a, 0) ];
        L.allowed_final l [ (a, w2) ]);
    t ~name:"cxl-no-barrier-any-order" ~model:Model.Cxl
      ~doc:"without any barrier, per-line durability is completely unordered"
      (fun l ->
        let wa = L.w l a in
        let _wb = L.w l b in
        let wc = L.w l c in
        L.check_persist l c ~pass:false;
        L.check_ordered l a c ~pass:false;
        L.allowed l [ (a, 0); (b, 0); (c, wc) ];
        L.allowed l [ (a, wa); (b, 0); (c, 0) ]);
  ]

let all = x86 @ hops @ eadr @ cxl

let for_model kind = List.filter (fun (t : L.t) -> t.L.model = kind) all

let find name = List.find_opt (fun (t : L.t) -> t.L.name = name) all

let slice ~lo ~hi =
  if hi < lo then invalid_arg "Suite.slice: inverted range";
  List.filteri (fun i _ -> i >= lo && i < hi) all
