open Pmtest_util
open Pmtest_model
open Pmtest_trace
module Engine = Pmtest_core.Engine
module Report = Pmtest_core.Report
module Machine = Pmtest_pmem.Machine
module Crashtest = Pmtest_crashtest.Crashtest
module Gen = Pmtest_fuzz.Gen
module Oracle = Pmtest_fuzz.Oracle

type expect = Allowed | Forbidden
type scope = Any | Final
type state_check = { expect : expect; scope : scope; cells : (int * int) list }
type checker_expect = { index : int; pass : bool }

type t = {
  name : string;
  model : Model.kind;
  doc : string;
  events : Event.t array;
  states : state_check list;
  checkers : checker_expect list;
  lines : int;
}

let addr_of_line line = line * Model.cache_line

(* Write payloads follow the oracle's convention: the k-th write
   (0-based) stores [chr ((k mod 250) + 1)], so ordinal [n] (1-based)
   observes byte [chr (((n-1) mod 250) + 1)] and ordinal 0 the zeroed
   initial content. *)
let payload_of_ordinal = function
  | 0 -> '\000'
  | n -> Char.chr (((n - 1) mod 250) + 1)

(* {1 Builder} *)

type builder = {
  mutable rev_events : Event.t list;
  mutable count : int;
  mutable writes : int;
  mutable b_states : state_check list;
  mutable b_checkers : checker_expect list;
  mutable max_line : int;
}

let note_line b line = if line > b.max_line then b.max_line <- line

let push b kind =
  b.rev_events <-
    Event.make ~loc:(Loc.make ~file:"litmus" ~line:b.count) kind :: b.rev_events;
  b.count <- b.count + 1

let w b line =
  note_line b line;
  push b (Event.Op (Model.Write { addr = addr_of_line line; size = Gen.write_size }));
  b.writes <- b.writes + 1;
  b.writes

let clwb b line =
  note_line b line;
  push b (Event.Op (Model.Clwb { addr = addr_of_line line; size = Gen.write_size }))

let sfence b = push b (Event.Op Model.Sfence)
let ofence b = push b (Event.Op Model.Ofence)
let dfence b = push b (Event.Op Model.Dfence)
let gpf b = push b (Event.Op Model.Gpf)

let check_persist b line ~pass =
  note_line b line;
  b.b_checkers <- { index = b.count; pass } :: b.b_checkers;
  push b (Event.Checker (Event.Is_persist { addr = addr_of_line line; size = Gen.write_size }))

let check_ordered b la lb ~pass =
  note_line b la;
  note_line b lb;
  b.b_checkers <- { index = b.count; pass } :: b.b_checkers;
  push b
    (Event.Checker
       (Event.Is_ordered_before
          {
            a_addr = addr_of_line la;
            a_size = Gen.write_size;
            b_addr = addr_of_line lb;
            b_size = Gen.write_size;
          }))

let state b expect scope cells =
  List.iter (fun (line, _) -> note_line b line) cells;
  b.b_states <- { expect; scope; cells } :: b.b_states

let allowed b cells = state b Allowed Any cells
let forbidden b cells = state b Forbidden Any cells
let allowed_final b cells = state b Allowed Final cells
let forbidden_final b cells = state b Forbidden Final cells

let make ~name ~model ~doc f =
  let b =
    {
      rev_events = [];
      count = 0;
      writes = 0;
      b_states = [];
      b_checkers = [];
      max_line = 0;
    }
  in
  f b;
  let events = Array.of_list (List.rev b.rev_events) in
  Array.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Op op ->
        if not (Model.valid_op model op) then
          invalid_arg
            (Printf.sprintf "litmus test %s: op %s is invalid under %s" name
               (Format.asprintf "%a" Model.pp_op op)
               (Model.kind_name model))
      | _ -> ())
    events;
  {
    name;
    model;
    doc;
    events;
    states = List.rev b.b_states;
    checkers = List.rev b.b_checkers;
    lines = b.max_line + 1;
  }

let program_of t =
  { Gen.model = t.model; pm_size = t.lines * Model.cache_line; events = t.events }

let with_events t events = { t with events }

(* {1 Runner} *)

type failure = { leg : string; message : string }
type outcome = { test : t; failures : failure list }

let passed o = o.failures = []

let pp_expect = function Allowed -> "allowed" | Forbidden -> "forbidden"
let pp_scope = function Any -> "any crash point" | Final -> "final crash point"

let pp_state sc =
  Printf.sprintf "%s@%s {%s}" (pp_expect sc.expect) (pp_scope sc.scope)
    (String.concat "; "
       (List.map (fun (line, ord) -> Printf.sprintf "L%d=%d" line ord) sc.cells))

let matches_state cells img =
  List.for_all
    (fun (line, ord) ->
      let a = addr_of_line line in
      let v = payload_of_ordinal ord in
      let rec go k = k >= Gen.write_size || (Bytes.get img (a + k) = v && go (k + 1)) in
      go 0)
    cells

(* Engine leg: the trace checker's verdicts on the embedded
   isPersist/isOrderedBefore assertions. *)
let engine_leg t =
  let fail fmt = Printf.ksprintf (fun message -> { leg = "engine"; message }) fmt in
  let r = Engine.check ~model:t.model t.events in
  let invalid =
    if Report.count Report.Invalid_op r > 0 then
      [ fail "program is not valid under %s" (Model.kind_name t.model) ]
    else []
  in
  invalid
  @ List.filter_map
      (fun ce ->
        let loc = t.events.(ce.index).Event.loc in
        let failed =
          List.exists
            (fun (d : Report.diagnostic) ->
              (d.Report.kind = Report.Not_persisted || d.Report.kind = Report.Not_ordered)
              && Loc.equal d.Report.loc loc)
            r.Report.diagnostics
        in
        if not failed = ce.pass then None
        else
          Some
            (fail "checker at event %d: engine says %s, test expects %s" ce.index
               (if failed then "FAIL" else "pass")
               (if ce.pass then "pass" else "FAIL")))
      t.checkers

(* Oracle leg: exhaustive per-model crash-state enumeration decides both
   the checker verdicts and the allowed/forbidden state expectations.
   [sim] substitutes the model simulation — the broken-model tests use it
   to prove the harness catches an implementation that admits a
   forbidden state or loses an allowed one. *)
let oracle_leg ?sim t =
  let fail fmt = Printf.ksprintf (fun message -> { leg = "oracle"; message }) fmt in
  let p = program_of t in
  if not (Gen.oracle_eligible p) then
    [ fail "program is not oracle-eligible — litmus tests must be straight-line and aligned" ]
  else begin
    let limit = 1 lsl 16 in
    let mk = match sim with Some f -> f | None -> fun p -> Oracle.sim_for ~limit p in
    let { Oracle.points; exhaustive } = Oracle.run (mk p) p in
    let checker_fails =
      if not exhaustive then [ fail "crash-state enumeration truncated" ]
      else
        List.filter_map
          (fun ce ->
            match List.find_opt (fun (pt : Oracle.point) -> pt.Oracle.index = ce.index) points with
            | None -> Some (fail "checker at event %d not evaluated by the oracle" ce.index)
            | Some pt ->
              if pt.Oracle.holds = ce.pass then None
              else
                Some
                  (fail "checker at event %d: enumeration says %s, test expects %s" ce.index
                     (if pt.Oracle.holds then "holds" else "violated")
                     (if ce.pass then "pass" else "FAIL")))
          t.checkers
    in
    let world = Oracle.explore_with (mk p) p in
    let state_fails =
      if not world.Oracle.exhaustive then [ fail "crash-state exploration truncated" ]
      else
        List.filter_map
          (fun sc ->
            let tbl =
              match sc.scope with Any -> world.Oracle.images | Final -> world.Oracle.final
            in
            let present =
              Hashtbl.fold
                (fun img () acc -> acc || matches_state sc.cells (Bytes.of_string img))
                tbl false
            in
            match (sc.expect, present) with
            | Allowed, false -> Some (fail "state %s is not reachable" (pp_state sc))
            | Forbidden, true -> Some (fail "state %s is reachable" (pp_state sc))
            | Allowed, true | Forbidden, false -> None)
          t.states
    in
    checker_fails @ state_fails
  end

(* Crashtest leg: the same expectations checked against the simulated
   device, crash-injected after every step. The device is exact for x86
   and CXL; eADR is exact once every store drains immediately (caches
   are in the persistence domain); for HOPS the device ignores epoch
   ordering and over-approximates the reachable set, so only allowed
   states (which the superset must contain) are conclusive there. *)
let crashtest_leg t =
  let fail fmt = Printf.ksprintf (fun message -> { leg = "crashtest"; message }) fmt in
  let p = program_of t in
  let exact = match t.model with Model.X86 | Model.Eadr | Model.Cxl -> true | Model.Hops -> false in
  let apply m (e : Event.t) ~payload =
    match e.Event.kind with
    | Event.Op (Model.Write { addr; size }) ->
      Machine.store m ~addr (Bytes.make size (payload ()));
      if t.model = Model.Eadr then Machine.dfence m
    | Event.Op (Model.Clwb { addr; size }) -> Machine.clwb m ~addr ~size
    | Event.Op Model.Sfence -> Machine.sfence m
    | Event.Op Model.Ofence -> Machine.ofence m
    | Event.Op (Model.Dfence | Model.Gpf) -> Machine.dfence m
    | _ -> ()
  in
  let machine = Machine.create ~track_versions:true ~size:p.Gen.pm_size () in
  let states = Array.of_list t.states in
  let seen = Array.make (Array.length states) false in
  let steps = Array.length t.events in
  let cur = ref (-1) in
  let counter = ref 0 in
  let payload () =
    let v = Char.chr ((!counter mod 250) + 1) in
    incr counter;
    v
  in
  let step i =
    cur := i;
    apply machine t.events.(i) ~payload
  in
  let recover img =
    let bad = ref None in
    Array.iteri
      (fun i sc ->
        let in_scope = match sc.scope with Any -> true | Final -> !cur = steps - 1 in
        if in_scope && matches_state sc.cells img then begin
          seen.(i) <- true;
          if sc.expect = Forbidden && exact && !bad = None then
            bad := Some (Printf.sprintf "state %s generated by the device" (pp_state sc))
        end)
      states;
    match !bad with None -> Ok () | Some m -> Error m
  in
  let config =
    { Crashtest.samples_per_point = 256; exhaustive_limit = 1 lsl 16; seed = 7; max_failures = 16 }
  in
  let verdict = Crashtest.run ~config ~machine ~recover ~steps ~step () in
  let forbidden_fails =
    List.sort_uniq compare
      (List.map (fun (f : Crashtest.failure) -> f.Crashtest.message) verdict.Crashtest.failures)
    |> List.map (fun message -> { leg = "crashtest"; message })
  in
  let allowed_fails =
    Array.to_list
      (Array.mapi
         (fun i sc ->
           if sc.expect = Allowed && not seen.(i) then
             Some (fail "state %s never generated by the device" (pp_state sc))
           else None)
         states)
    |> List.filter_map Fun.id
  in
  forbidden_fails @ allowed_fails

let run_test ?sim t =
  { test = t; failures = engine_leg t @ oracle_leg ?sim t @ crashtest_leg t }

let run_suite ?models tests =
  let keep =
    match models with None -> fun _ -> true | Some ms -> fun t -> List.mem t.model ms
  in
  List.filter keep tests |> List.map (fun t -> run_test t)

(* Name + per-leg failure messages, nothing wall-clock-dependent: farm
   job attempts over the same test slice must digest identically. *)
let outcomes_digest outcomes =
  let b = Buffer.create 256 in
  List.iter
    (fun o ->
      Printf.bprintf b "%s %s\n" o.test.name (if passed o then "pass" else "FAIL");
      List.iter (fun f -> Printf.bprintf b "  %s: %s\n" f.leg f.message) o.failures)
    outcomes;
  Digest.to_hex (Digest.string (Buffer.contents b))
