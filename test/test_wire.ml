(* The framed wire protocol: CRC-32 golden values, frame round trips
   over a real socketpair, torn/corrupt/alien-version frames, and the
   payload codecs (hello, hello_ack, report, err). *)

open Pmtest_model
module Wire = Pmtest_wire.Wire
module Report = Pmtest_core.Report
module Loc = Pmtest_util.Loc

(* --- CRC-32 ----------------------------------------------------------------- *)

let test_crc32_golden () =
  (* The CRC-32/IEEE check value from the ROCKSOFT catalog. *)
  Alcotest.(check int) "check string" 0xcbf43926 (Wire.crc32 "123456789");
  Alcotest.(check int) "empty string" 0 (Wire.crc32 "");
  Alcotest.(check int) "single zero byte" 0xd202ef8d (Wire.crc32 "\x00")

(* --- Frames ----------------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_round_trip () =
  with_socketpair (fun a b ->
      let payload = String.init 300 (fun i -> Char.chr (i mod 256)) in
      (match Wire.write_frame a Wire.Section payload with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Wire.error_to_string e));
      match Wire.read_frame b with
      | Ok (kind, got) ->
        Alcotest.(check bool) "kind survives" true (kind = Wire.Section);
        Alcotest.(check string) "payload survives" payload got
      | Error e -> Alcotest.fail (Wire.error_to_string e))

let test_frame_empty_payload () =
  with_socketpair (fun a b ->
      (match Wire.write_frame a Wire.Bye "" with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Wire.error_to_string e));
      match Wire.read_frame b with
      | Ok (kind, got) ->
        Alcotest.(check bool) "bye" true (kind = Wire.Bye);
        Alcotest.(check string) "empty" "" got
      | Error e -> Alcotest.fail (Wire.error_to_string e))

(* Capture a valid frame's raw bytes by writing into a socketpair. *)
let raw_frame kind payload =
  with_socketpair (fun a b ->
      (match Wire.write_frame a kind payload with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Wire.error_to_string e));
      let len = Wire.header_len + String.length payload in
      let buf = Bytes.create len in
      let rec fill off =
        if off < len then begin
          let n = Unix.read b buf off (len - off) in
          if n = 0 then Alcotest.fail "short read";
          fill (off + n)
        end
      in
      fill 0;
      Bytes.to_string buf)

let feed raw f =
  with_socketpair (fun a b ->
      let n = Unix.write_substring a raw 0 (String.length raw) in
      Alcotest.(check int) "fed everything" (String.length raw) n;
      Unix.close a;
      (* a closed: a truncated stream ends in EOF, not a hang *)
      f (Wire.read_frame b))

let test_frame_bad_crc () =
  let raw = raw_frame Wire.Section "hello, pmtestd" in
  let b = Bytes.of_string raw in
  (* Flip one payload byte: the length still matches, the CRC cannot. *)
  Bytes.set b (Wire.header_len + 3) 'X';
  feed (Bytes.to_string b) (function
    | Error (Wire.Corrupt _) -> ()
    | Ok _ -> Alcotest.fail "corrupt frame accepted"
    | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e))

let test_frame_torn_mid_payload () =
  let raw = raw_frame Wire.Section "a section that never fully arrives" in
  feed
    (String.sub raw 0 (Wire.header_len + 5))
    (function
      | Error (Wire.Corrupt _) -> ()
      | Ok _ -> Alcotest.fail "torn frame accepted"
      | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e))

let test_frame_torn_mid_header () =
  let raw = raw_frame Wire.Get_result "" in
  feed (String.sub raw 0 3) (function
    | Error (Wire.Corrupt _ | Wire.Closed) -> ()
    | Ok _ -> Alcotest.fail "torn header accepted"
    | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e))

let test_frame_eof_at_boundary () =
  (* A clean close between frames is Closed, not Corrupt: the client
     simply hung up. *)
  feed "" (function
    | Error Wire.Closed -> ()
    | Ok _ -> Alcotest.fail "read from closed peer succeeded"
    | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e))

let test_frame_alien_version () =
  let raw = raw_frame Wire.Hello "x" in
  let b = Bytes.of_string raw in
  Bytes.set b 0 (Char.chr 99);
  feed (Bytes.to_string b) (function
    | Error (Wire.Version_mismatch 99) -> ()
    | Ok _ -> Alcotest.fail "alien version accepted"
    | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e))

let test_frame_unknown_kind () =
  let raw = raw_frame Wire.Hello "x" in
  let b = Bytes.of_string raw in
  Bytes.set b 1 (Char.chr 250);
  feed (Bytes.to_string b) (function
    | Error (Wire.Corrupt _) -> ()
    | Ok _ -> Alcotest.fail "unknown kind accepted"
    | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e))

(* --- Buffered batch reader ---------------------------------------------------- *)

let test_batch_many_frames_one_read () =
  (* Five frames land in the socket buffer before the reader wakes: one
     read_batch must surface all five, in order, without further I/O. *)
  let payloads = List.init 5 (fun i -> Printf.sprintf "section-%d" i) in
  let raw = String.concat "" (List.map (raw_frame Wire.Section) payloads) in
  with_socketpair (fun a b ->
      let n = Unix.write_substring a raw 0 (String.length raw) in
      Alcotest.(check int) "fed everything" (String.length raw) n;
      Unix.close a;
      let r = Wire.reader b in
      (match Wire.read_batch r with
      | Error e -> Alcotest.fail (Wire.error_to_string e)
      | Ok frames ->
        Alcotest.(check int) "all five in one batch" 5 (List.length frames);
        List.iter2
          (fun want (kind, got) ->
            Alcotest.(check bool) "kind" true (kind = Wire.Section);
            Alcotest.(check string) "payload, in order" want got)
          payloads frames);
      match Wire.read_batch r with
      | Error Wire.Closed -> ()
      | Ok _ -> Alcotest.fail "read past EOF succeeded"
      | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e))

let test_batch_stops_at_partial_frame () =
  (* Two complete frames plus the first half of a third: the batch
     returns the two without blocking for the third's tail, and the
     third is delivered once its remainder arrives. *)
  let raw1 = raw_frame Wire.Section "first" in
  let raw2 = raw_frame Wire.Section "second" in
  let raw3 = raw_frame Wire.Get_result "" in
  let cut = String.length raw3 / 2 in
  with_socketpair (fun a b ->
      let head = raw1 ^ raw2 ^ String.sub raw3 0 cut in
      ignore (Unix.write_substring a head 0 (String.length head));
      let r = Wire.reader b in
      (match Wire.read_batch r with
      | Error e -> Alcotest.fail (Wire.error_to_string e)
      | Ok frames ->
        Alcotest.(check (list string))
          "only the complete frames" [ "first"; "second" ]
          (List.map snd frames));
      ignore (Unix.write_substring a raw3 cut (String.length raw3 - cut));
      match Wire.read_batch r with
      | Error e -> Alcotest.fail (Wire.error_to_string e)
      | Ok [ (kind, "") ] -> Alcotest.(check bool) "get_result" true (kind = Wire.Get_result)
      | Ok _ -> Alcotest.fail "wrong tail batch")

let test_batch_error_is_sticky () =
  (* A good frame followed by a corrupt one in the same read: the good
     frame is still delivered, and the framing error surfaces on the
     next call — and on every call after that (a framing error is
     unrecoverable; resynchronising inside the stream is hopeless). *)
  let good = raw_frame Wire.Section "survivor" in
  let bad = Bytes.of_string (raw_frame Wire.Section "about to be smashed") in
  Bytes.set bad (Wire.header_len + 2) 'X';
  let raw = good ^ Bytes.to_string bad in
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a raw 0 (String.length raw));
      Unix.close a;
      let r = Wire.reader b in
      (match Wire.read_batch r with
      | Error e -> Alcotest.fail (Wire.error_to_string e)
      | Ok frames ->
        Alcotest.(check (list string)) "good frame delivered" [ "survivor" ]
          (List.map snd frames));
      (match Wire.read_batch r with
      | Error (Wire.Corrupt _) -> ()
      | Ok _ -> Alcotest.fail "corrupt frame accepted"
      | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e));
      match Wire.read_one r with
      | Error (Wire.Corrupt _) -> ()
      | Ok _ -> Alcotest.fail "sticky error cleared"
      | Error e -> Alcotest.failf "sticky error changed: %s" (Wire.error_to_string e))

let test_read_one_interleaves_with_batch () =
  (* read_one drains the same buffer: frames already buffered by a batch
     refill come back one at a time in order. *)
  let payloads = [ "a"; "b"; "c" ] in
  let raw = String.concat "" (List.map (raw_frame Wire.Section) payloads) in
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a raw 0 (String.length raw));
      Unix.close a;
      let r = Wire.reader b in
      List.iter
        (fun want ->
          match Wire.read_one r with
          | Ok (_, got) -> Alcotest.(check string) "in order" want got
          | Error e -> Alcotest.fail (Wire.error_to_string e))
        payloads;
      match Wire.read_one r with
      | Error Wire.Closed -> ()
      | Ok _ -> Alcotest.fail "read past EOF succeeded"
      | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e))

let test_batch_eof_mid_payload_is_corrupt () =
  (* EOF with a frame's header buffered but its payload missing is a
     torn frame (Corrupt), matching read_frame's semantics. *)
  let raw1 = raw_frame Wire.Section "complete" in
  let raw2 = raw_frame Wire.Section "never fully arrives" in
  let raw = raw1 ^ String.sub raw2 0 (Wire.header_len + 4) in
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a raw 0 (String.length raw));
      Unix.close a;
      let r = Wire.reader b in
      (match Wire.read_batch r with
      | Ok frames ->
        Alcotest.(check (list string)) "complete frame first" [ "complete" ]
          (List.map snd frames)
      | Error e -> Alcotest.fail (Wire.error_to_string e));
      match Wire.read_batch r with
      | Error (Wire.Corrupt _) -> ()
      | Ok _ -> Alcotest.fail "torn frame accepted"
      | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e))

(* --- Payload codecs ---------------------------------------------------------- *)

let test_hello_round_trip () =
  List.iter
    (fun model ->
      match Wire.decode_hello (Wire.encode_hello ~model) with
      | Ok m -> Alcotest.(check bool) (Model.kind_name model) true (m = model)
      | Error e -> Alcotest.fail (Wire.error_to_string e))
    Model.all_kinds

let test_hello_ack_round_trip () =
  List.iter
    (fun (session, max_inflight, policy) ->
      match
        Wire.decode_hello_ack (Wire.encode_hello_ack ~session ~max_inflight ~policy)
      with
      | Ok (s, m, p) ->
        Alcotest.(check int) "session" session s;
        Alcotest.(check int) "max_inflight" max_inflight m;
        Alcotest.(check bool) "policy" true (p = policy)
      | Error e -> Alcotest.fail (Wire.error_to_string e))
    [ (1, 64, Wire.Block); (70000, 0, Wire.Shed) ]

let test_report_round_trip () =
  let loc = Loc.make ~file:"pmdk/pool.c" ~line:620 in
  let report =
    {
      Report.diagnostics =
        [
          { Report.kind = Report.Not_persisted; loc; message = "write may not persist" };
          {
            Report.kind = Report.Unnecessary_writeback;
            loc = Loc.none;
            message = "redundant flush";
          };
        ];
      entries = 15;
      ops = 12;
      checkers = 3;
    }
  in
  match Wire.decode_report (Wire.encode_report report) with
  | Error e -> Alcotest.fail (Wire.error_to_string e)
  | Ok got ->
    Alcotest.(check string) "report renders identically"
      (Format.asprintf "%a" Report.pp report)
      (Format.asprintf "%a" Report.pp got)

let test_corrupt_cxl_hello_frame () =
  (* A CXL hello whose payload byte is smashed must surface as a typed
     Corrupt error at the frame layer, never as a silent model downgrade. *)
  let raw = raw_frame Wire.Hello (Wire.encode_hello ~model:Model.Cxl) in
  let b = Bytes.of_string raw in
  Bytes.set b Wire.header_len (Char.chr 0xff);
  feed (Bytes.to_string b) (function
    | Error (Wire.Corrupt _) -> ()
    | Ok _ -> Alcotest.fail "corrupt cxl hello accepted"
    | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e))

let test_hello_unknown_model_code () =
  (* One code past Cxl: the payload codec must reject it, so an older
     server cannot misread a future model as one of the known four. *)
  let good = Wire.encode_hello ~model:Model.Cxl in
  let bad = Bytes.of_string good in
  Bytes.set bad 0 (Char.chr (Char.code good.[0] + 1));
  match Wire.decode_hello (Bytes.to_string bad) with
  | Ok m -> Alcotest.failf "model code past cxl decoded as %s" (Model.kind_name m)
  | Error _ -> ()

let test_err_round_trip () =
  match Wire.decode_err (Wire.encode_err "session limit reached (32 active)") with
  | Ok m -> Alcotest.(check string) "message" "session limit reached (32 active)" m
  | Error e -> Alcotest.fail (Wire.error_to_string e)

(* --- Farm frames (protocol version 2) ----------------------------------- *)

let test_worker_hello_codec_round_trip () =
  match
    Wire.decode_worker_hello
      (Wire.encode_worker_hello ~farm:3 ~name:"rig-7.worker-b" ~engines:0b101)
  with
  | Error e -> Alcotest.fail (Wire.error_to_string e)
  | Ok (farm, name, engines) ->
    Alcotest.(check int) "farm level" 3 farm;
    Alcotest.(check string) "name" "rig-7.worker-b" name;
    Alcotest.(check int) "engine mask" 0b101 engines

let test_job_offer_codec_round_trip () =
  let spec = "fuzz model=x86 seed=0 count=200 chunk=25" in
  match
    Wire.decode_job_offer (Wire.encode_job_offer ~job:6 ~attempt:2 ~lo:150 ~hi:175 ~spec)
  with
  | Error e -> Alcotest.fail (Wire.error_to_string e)
  | Ok (job, attempt, lo, hi, got) ->
    Alcotest.(check int) "job" 6 job;
    Alcotest.(check int) "attempt" 2 attempt;
    Alcotest.(check int) "lo" 150 lo;
    Alcotest.(check int) "hi" 175 hi;
    Alcotest.(check string) "spec travels verbatim" spec got

let test_job_claim_codec_round_trip () =
  match Wire.decode_job_claim (Wire.encode_job_claim ~job:0 ~attempt:1) with
  | Error e -> Alcotest.fail (Wire.error_to_string e)
  | Ok (job, attempt) ->
    Alcotest.(check int) "job" 0 job;
    Alcotest.(check int) "attempt" 1 attempt

let test_job_result_codec_round_trip () =
  (* Findings are full reproducer texts: newlines and '#' comment lines
     must survive untouched. *)
  let findings =
    [
      ("x86-seed3-store-skips-flush", "# pmtest reproducer v1\nstore 0 8\nflush 0\n");
      ("pmfs-alloc-seed9", "# crashfs reproducer\ncreate /a\nwrite /a 64\n");
    ]
  in
  match
    Wire.decode_job_result
      (Wire.encode_job_result ~job:3 ~attempt:1 ~digest:"2a97e25cffff0123" ~units:25
         ~elapsed_ms:412 ~findings)
  with
  | Error e -> Alcotest.fail (Wire.error_to_string e)
  | Ok (job, attempt, digest, units, elapsed_ms, got) ->
    Alcotest.(check int) "job" 3 job;
    Alcotest.(check int) "attempt" 1 attempt;
    Alcotest.(check string) "digest" "2a97e25cffff0123" digest;
    Alcotest.(check int) "units" 25 units;
    Alcotest.(check int) "elapsed" 412 elapsed_ms;
    Alcotest.(check (list (pair string string))) "findings verbatim" findings got

let test_checkpoint_codec_round_trip () =
  (match Wire.decode_checkpoint (Wire.encode_checkpoint ~running:(Some 7) ~jobs_done:12) with
  | Error e -> Alcotest.fail (Wire.error_to_string e)
  | Ok (running, jobs_done) ->
    Alcotest.(check (option int)) "running job" (Some 7) running;
    Alcotest.(check int) "jobs done" 12 jobs_done);
  match Wire.decode_checkpoint (Wire.encode_checkpoint ~running:None ~jobs_done:0) with
  | Error e -> Alcotest.fail (Wire.error_to_string e)
  | Ok (running, jobs_done) ->
    Alcotest.(check (option int)) "idle" None running;
    Alcotest.(check int) "fresh" 0 jobs_done

let test_job_refused_codec_round_trip () =
  match
    Wire.decode_job_refused
      (Wire.encode_job_refused ~job:4 ~attempt:2 ~reason:"unknown fault 'torn-journal'")
  with
  | Error e -> Alcotest.fail (Wire.error_to_string e)
  | Ok (job, attempt, reason) ->
    Alcotest.(check int) "job" 4 job;
    Alcotest.(check int) "attempt" 2 attempt;
    Alcotest.(check string) "reason" "unknown fault 'torn-journal'" reason

let test_job_offer_inverted_range_rejected () =
  (* The encoder is trusting; the decoder is not.  A frame whose seed
     range runs backwards is corrupt, not an empty job. *)
  match
    Wire.decode_job_offer
      (Wire.encode_job_offer ~job:1 ~attempt:1 ~lo:50 ~hi:25 ~spec:"fuzz model=x86")
  with
  | Ok _ -> Alcotest.fail "inverted seed range accepted"
  | Error (Wire.Corrupt _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)

let test_farm_codecs_reject_garbage () =
  (* Empty, random, and truncated payloads must all surface as typed
     errors — a worker answers these with [Err] and keeps its link. *)
  let offer =
    Wire.encode_job_offer ~job:2 ~attempt:1 ~lo:0 ~hi:25 ~spec:"fuzz model=x86 count=25"
  in
  let result =
    Wire.encode_job_result ~job:2 ~attempt:1 ~digest:"abcd" ~units:25 ~elapsed_ms:3
      ~findings:[ ("n", "text") ]
  in
  List.iter
    (fun (name, r) ->
      match r with
      | Ok _ -> Alcotest.failf "%s decoded garbage" name
      | Error (Wire.Corrupt _) -> ()
      | Error e -> Alcotest.failf "%s: wrong error: %s" name (Wire.error_to_string e))
    [
      ("worker_hello empty", Result.map ignore (Wire.decode_worker_hello ""));
      ( "worker_hello truncated name",
        Result.map ignore (Wire.decode_worker_hello "\x01\x20abc") );
      ("job_offer empty", Result.map ignore (Wire.decode_job_offer ""));
      ( "job_offer truncated",
        Result.map ignore
          (Wire.decode_job_offer (String.sub offer 0 (String.length offer / 2))) );
      ( "job_offer trailing bytes",
        Result.map ignore (Wire.decode_job_offer (offer ^ "\x00")) );
      ("job_claim empty", Result.map ignore (Wire.decode_job_claim ""));
      ( "job_claim trailing bytes",
        Result.map ignore (Wire.decode_job_claim (Wire.encode_job_claim ~job:1 ~attempt:1 ^ "z"))
      );
      ("job_result empty", Result.map ignore (Wire.decode_job_result ""));
      ( "job_result truncated finding",
        Result.map ignore
          (Wire.decode_job_result (String.sub result 0 (String.length result - 2))) );
      ("job_refused empty", Result.map ignore (Wire.decode_job_refused ""));
      ( "job_refused truncated reason",
        Result.map ignore (Wire.decode_job_refused "\x01\x01\x20oops") );
      ( "job_refused trailing bytes",
        Result.map ignore
          (Wire.decode_job_refused
             (Wire.encode_job_refused ~job:1 ~attempt:1 ~reason:"r" ^ "\x00")) );
      ("checkpoint empty", Result.map ignore (Wire.decode_checkpoint ""));
      ( "checkpoint varint overflow",
        Result.map ignore
          (Wire.decode_checkpoint "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff") );
    ]

let test_farm_frame_stamped_v2 () =
  (* Farm frames go out stamped protocol version 2; the legacy family
     keeps version 1, so pre-farm traffic stays byte-identical. *)
  let farm_raw = raw_frame Wire.Job_claim (Wire.encode_job_claim ~job:0 ~attempt:1) in
  Alcotest.(check int) "farm frame version byte" 2 (Char.code farm_raw.[0]);
  let legacy_raw = raw_frame Wire.Hello (Wire.encode_hello ~model:Model.X86) in
  Alcotest.(check int) "legacy frame version byte" 1 (Char.code legacy_raw.[0])

let test_farm_kind_under_v1_rejected () =
  (* A version-1 header cannot carry a farm kind: that is a corrupt
     frame, not a silent downgrade. *)
  let raw = raw_frame Wire.Worker_hello (Wire.encode_worker_hello ~farm:1 ~name:"w" ~engines:0) in
  let b = Bytes.of_string raw in
  Bytes.set b 0 (Char.chr 1);
  feed (Bytes.to_string b) (function
    | Error (Wire.Corrupt _) -> ()
    | Ok _ -> Alcotest.fail "farm kind under v1 accepted"
    | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e))

let test_pre_farm_hello_negotiates_down () =
  (* A version-1 client's [Hello] — the exact bytes a pre-farm build
     emits — is still accepted by the version-2 reader and decodes to
     the same model.  This is the negotiate-down guarantee. *)
  let raw = raw_frame Wire.Hello (Wire.encode_hello ~model:Model.Cxl) in
  Alcotest.(check int) "already a v1 frame on the wire" 1 (Char.code raw.[0]);
  feed raw (function
    | Error e -> Alcotest.fail (Wire.error_to_string e)
    | Ok (kind, payload) ->
      Alcotest.(check bool) "hello kind" true (kind = Wire.Hello);
      (match Wire.decode_hello payload with
      | Ok m -> Alcotest.(check bool) "model survives" true (m = Model.Cxl)
      | Error e -> Alcotest.fail (Wire.error_to_string e)))

let test_codec_rejects_garbage () =
  List.iter
    (fun (name, r) ->
      match r with
      | Ok _ -> Alcotest.failf "%s decoded garbage" name
      | Error _ -> ())
    [
      ("hello", Result.map ignore (Wire.decode_hello "\xff\xff"));
      ("hello_ack", Result.map ignore (Wire.decode_hello_ack ""));
      ("report", Result.map ignore (Wire.decode_report "\x81"));
    ]

let () =
  Alcotest.run "wire"
    [
      ("crc", [ Alcotest.test_case "golden values" `Quick test_crc32_golden ]);
      ( "frames",
        [
          Alcotest.test_case "round trip over a socketpair" `Quick test_frame_round_trip;
          Alcotest.test_case "empty payload" `Quick test_frame_empty_payload;
          Alcotest.test_case "bad CRC rejected" `Quick test_frame_bad_crc;
          Alcotest.test_case "torn mid-payload" `Quick test_frame_torn_mid_payload;
          Alcotest.test_case "torn mid-header" `Quick test_frame_torn_mid_header;
          Alcotest.test_case "EOF at a frame boundary is Closed" `Quick
            test_frame_eof_at_boundary;
          Alcotest.test_case "alien protocol version" `Quick test_frame_alien_version;
          Alcotest.test_case "unknown frame kind" `Quick test_frame_unknown_kind;
          Alcotest.test_case "corrupt cxl hello frame" `Quick test_corrupt_cxl_hello_frame;
        ] );
      ( "reader",
        [
          Alcotest.test_case "many frames in one batch" `Quick test_batch_many_frames_one_read;
          Alcotest.test_case "batch stops at a partial frame" `Quick
            test_batch_stops_at_partial_frame;
          Alcotest.test_case "framing errors are sticky" `Quick test_batch_error_is_sticky;
          Alcotest.test_case "read_one interleaves with batch" `Quick
            test_read_one_interleaves_with_batch;
          Alcotest.test_case "EOF mid-payload is Corrupt" `Quick
            test_batch_eof_mid_payload_is_corrupt;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "hello" `Quick test_hello_round_trip;
          Alcotest.test_case "model code past cxl rejected" `Quick
            test_hello_unknown_model_code;
          Alcotest.test_case "hello_ack" `Quick test_hello_ack_round_trip;
          Alcotest.test_case "report" `Quick test_report_round_trip;
          Alcotest.test_case "err" `Quick test_err_round_trip;
          Alcotest.test_case "garbage rejected" `Quick test_codec_rejects_garbage;
        ] );
      ( "farm",
        [
          Alcotest.test_case "worker_hello round trip" `Quick
            test_worker_hello_codec_round_trip;
          Alcotest.test_case "job_offer round trip" `Quick test_job_offer_codec_round_trip;
          Alcotest.test_case "job_claim round trip" `Quick test_job_claim_codec_round_trip;
          Alcotest.test_case "job_result round trip" `Quick test_job_result_codec_round_trip;
          Alcotest.test_case "job_refused round trip" `Quick test_job_refused_codec_round_trip;
          Alcotest.test_case "checkpoint round trip" `Quick test_checkpoint_codec_round_trip;
          Alcotest.test_case "inverted seed range rejected" `Quick
            test_job_offer_inverted_range_rejected;
          Alcotest.test_case "corrupt and truncated payloads rejected" `Quick
            test_farm_codecs_reject_garbage;
          Alcotest.test_case "farm frames stamped version 2" `Quick
            test_farm_frame_stamped_v2;
          Alcotest.test_case "farm kind under v1 header rejected" `Quick
            test_farm_kind_under_v1_rejected;
          Alcotest.test_case "pre-farm hello negotiates down" `Quick
            test_pre_farm_hello_negotiates_down;
        ] );
    ]
