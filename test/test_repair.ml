(* The auto-repair pass: one golden trace per edit kind, fixed-point
   convergence and idempotence, the engine-side proof obligations, the
   seeded PMFS performance bugs, and agreement with the fuzz contract
   on random programs. *)

open Pmtest_model
open Pmtest_trace
module Repair = Pmtest_repair.Repair
module Lint = Pmtest_lint.Lint
module Rule = Pmtest_lint.Rule
module Fixit = Pmtest_lint.Fixit
module Obs = Pmtest_obs.Obs
module Fs = Pmtest_pmfs.Fs
module Gen = Pmtest_fuzz.Gen
module Cross = Pmtest_fuzz.Cross

let e kind = Event.make kind
let w addr size = e (Event.Op (Model.Write { addr; size }))
let clwb addr size = e (Event.Op (Model.Clwb { addr; size }))
let sfence = e (Event.Op Model.Sfence)
let tx k = e (Event.Tx k)
let tx_add addr size = e (Event.Tx (Event.Tx_add { addr; size }))

let fix ?model ?rules entries = Repair.fixpoint ?model ?rules (Array.of_list entries)

let prove ?model ?rules entries (o : Repair.outcome) =
  Alcotest.(check (list string))
    "verify_static proves the repair" []
    (Repair.verify_static ?model ?rules ~original:(Array.of_list entries) o)

let lint_clean ?model (o : Repair.outcome) =
  Alcotest.(check int)
    "repaired trace lints clean" 0
    (List.length (Lint.run ?model o.Repair.repaired).Lint.findings)

let kinds (o : Repair.outcome) = Array.map (fun (ev : Event.t) -> ev.Event.kind) o.Repair.repaired

(* --- One golden trace per edit kind ---------------------------------------- *)

let test_clean_trace_untouched () =
  let trace = [ w 0x100 8; clwb 0x100 8; sfence ] in
  let o = fix trace in
  Alcotest.(check int) "no edits" 0 (Repair.edits_applied o);
  Alcotest.(check int) "one clean lint pass" 1 o.Repair.iterations;
  Alcotest.(check bool) "converged" true o.Repair.converged;
  prove trace o

let test_redundant_fence_deleted () =
  let trace = [ w 0x100 8; clwb 0x100 8; sfence; sfence ] in
  let o = fix trace in
  Alcotest.(check int) "one fence deleted" 1 o.Repair.deleted_fences;
  Alcotest.(check int) "three events remain" 3 (Array.length o.Repair.repaired);
  lint_clean o;
  prove trace o

let test_duplicate_flush_deleted () =
  let trace = [ w 0x100 8; clwb 0x100 8; clwb 0x100 8; sfence ] in
  let o = fix trace in
  Alcotest.(check int) "one writeback deleted" 1 o.Repair.deleted_flushes;
  lint_clean o;
  prove trace o

let test_unnecessary_flush_cascades () =
  (* Deleting the pointless writeback strands the fence; the next round
     deletes that too — the whole trace repairs away. *)
  let trace = [ clwb 0x100 8; sfence ] in
  let o = fix trace in
  Alcotest.(check int) "nothing left" 0 (Array.length o.Repair.repaired);
  Alcotest.(check int) "writeback then fence" 2 (Repair.edits_applied o);
  Alcotest.(check bool) "took two rounds" true (o.Repair.iterations >= 3);
  prove trace o

let test_overwide_flush_narrowed () =
  let trace = [ w 0x100 8; clwb 0x100 16; sfence ] in
  let o = fix trace in
  Alcotest.(check int) "one writeback narrowed" 1 o.Repair.narrowed_flushes;
  (match kinds o with
  | [| _; Event.Op (Model.Clwb { addr = 0x100; size = 8 }); _ |] -> ()
  | _ -> Alcotest.fail "expected the writeback narrowed to [0x100,+8)");
  lint_clean o;
  prove trace o

let test_never_flushed_gets_flush_and_fence () =
  let trace = [ w 0x100 8 ] in
  let o = fix trace in
  Alcotest.(check int) "writeback inserted" 1 o.Repair.inserted_flushes;
  Alcotest.(check int) "fence inserted" 1 o.Repair.inserted_fences;
  (match kinds o with
  | [| _; Event.Op (Model.Clwb { addr = 0x100; size = 8 }); Event.Op Model.Sfence |] -> ()
  | _ -> Alcotest.fail "expected an appended writeback and drain fence");
  lint_clean o;
  prove trace o

let test_flush_without_fence_gets_fence () =
  let trace = [ w 0x100 8; clwb 0x100 8 ] in
  let o = fix trace in
  Alcotest.(check int) "no writeback inserted" 0 o.Repair.inserted_flushes;
  Alcotest.(check int) "fence inserted" 1 o.Repair.inserted_fences;
  lint_clean o;
  prove trace o

let test_hops_gets_dfence () =
  let trace = [ w 0x100 8 ] in
  let o = fix ~model:Model.Hops trace in
  Alcotest.(check int) "fence inserted" 1 o.Repair.inserted_fences;
  (match kinds o with
  | [| _; Event.Op Model.Dfence |] -> ()
  | _ -> Alcotest.fail "expected an appended dfence under HOPS");
  lint_clean ~model:Model.Hops o;
  prove ~model:Model.Hops trace o

let test_eadr_deletes_legacy_flush () =
  let trace = [ w 0x100 8; clwb 0x100 8; sfence ] in
  let o = fix ~model:Model.Eadr trace in
  Alcotest.(check int) "legacy writeback deleted" 1 o.Repair.deleted_flushes;
  Alcotest.(check int) "nothing inserted" 0
    (o.Repair.inserted_flushes + o.Repair.inserted_fences);
  lint_clean ~model:Model.Eadr o;
  prove ~model:Model.Eadr trace o

let test_unlogged_tx_write_gets_log () =
  let trace =
    [ tx Event.Tx_begin; w 0x100 8; tx Event.Tx_commit; clwb 0x100 8; sfence ]
  in
  let o = fix trace in
  Alcotest.(check int) "one log entry inserted" 1 o.Repair.inserted_logs;
  (match (kinds o).(1) with
  | Event.Tx (Event.Tx_add { addr = 0x100; size = 8 }) -> ()
  | _ -> Alcotest.fail "expected TX_ADD inserted before the store");
  lint_clean o;
  prove trace o

let test_logged_tx_write_untouched () =
  let trace =
    [
      tx Event.Tx_begin; tx_add 0x100 8; w 0x100 8; tx Event.Tx_commit; clwb 0x100 8; sfence;
    ]
  in
  let o = fix trace in
  Alcotest.(check int) "no edits" 0 (Repair.edits_applied o);
  prove trace o

(* --- Fixed point ------------------------------------------------------------ *)

let test_idempotent () =
  let trace = [ w 0x100 8; clwb 0x100 16; sfence; sfence; w 0x180 8 ] in
  let o = fix trace in
  Alcotest.(check bool) "converged" true o.Repair.converged;
  let o2 = Repair.fixpoint o.Repair.repaired in
  Alcotest.(check int) "repairing a repair is a no-op" 0 (Repair.edits_applied o2);
  prove trace o

let test_machine_lines () =
  let o = fix [ w 0x100 8; clwb 0x100 8; sfence; sfence ] in
  Alcotest.(check (list string))
    "round, index, rule, fixit"
    [ "1\t3\tredundant-fence\tdelete" ]
    (Repair.machine_lines o)

let test_obs_counters () =
  let obs = Obs.create () in
  let o = Repair.fixpoint ~obs (Array.of_list [ w 0x100 8; clwb 0x100 8; sfence; sfence ]) in
  Alcotest.(check int) "one edit" 1 (Repair.edits_applied o);
  let s = Obs.snapshot obs in
  Alcotest.(check int) "one trace repaired" 1 s.Obs.repair_traces;
  Alcotest.(check int) "edit counted" 1 s.Obs.repair_edits;
  Alcotest.(check bool) "rounds counted" true (s.Obs.repair_rounds >= 2)

(* --- The seeded PMFS performance bugs --------------------------------------- *)

let count_fences_at line (events : Event.t array) =
  Array.fold_left
    (fun n (ev : Event.t) ->
      match ev.Event.kind with
      | Event.Op Model.Sfence when ev.Event.loc.Pmtest_util.Loc.line = line -> n + 1
      | _ -> n)
    0 events

let record_fs fault ops =
  let sink, recorded = Serial.recording_sink () in
  let fs = Fs.mkfs ~inodes:16 ~blocks:64 ~sink () in
  Fs.set_fault fs (Some fault);
  (match ops fs with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pmfs driver failed: %s" e);
  (match Fs.check_consistent fs with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pmfs store inconsistent: %s" e);
  recorded ()

let test_pmfs_fsync_bug () =
  (* fsync.c:260 without the deliberate-drain annotation: both fsync
     fences drain nothing and must be deleted — the repairer reproduces
     the PMFS fix mechanically. *)
  let entries =
    record_fs Fs.Fsync_redundant_fence (fun fs ->
        Result.bind (Fs.create fs "wal") (fun ino ->
            Result.bind
              (Fs.write fs ~ino ~off:0 (String.make 192 'a'))
              (fun () ->
                Fs.fsync fs ~ino;
                Fs.fsync fs ~ino;
                Ok ())))
  in
  Alcotest.(check int) "two surplus fsync fences" 2 (count_fences_at 260 entries);
  let o = Repair.fixpoint entries in
  Alcotest.(check int) "both deleted" 2 o.Repair.deleted_fences;
  Alcotest.(check int) "nothing else edited" 2 (Repair.edits_applied o);
  Alcotest.(check int) "no fsync fence survives" 0 (count_fences_at 260 o.Repair.repaired);
  Alcotest.(check (list string))
    "repair proven" []
    (Repair.verify_static ~original:entries o)

let test_pmfs_empty_tx_bug () =
  (* journal.c:633 without the empty-commit guard: the in-place
     overwrite's commit fences right after the data drain at
     xips.c:208. Exactly that one fence goes; the two legitimate commit
     fences (create, first write) stay. *)
  let entries =
    record_fs Fs.Empty_tx_fence (fun fs ->
        Result.bind (Fs.create fs "table") (fun ino ->
            Result.bind
              (Fs.write fs ~ino ~off:0 (String.make 128 'a'))
              (fun () -> Result.map ignore (Fs.write fs ~ino ~off:0 (String.make 128 'b')))))
  in
  let before = count_fences_at 633 entries in
  Alcotest.(check bool) "legitimate commit fences recorded too" true (before >= 2);
  let o = Repair.fixpoint entries in
  Alcotest.(check int) "exactly the surplus one deleted" 1 o.Repair.deleted_fences;
  Alcotest.(check int) "legitimate commit fences survive" (before - 1)
    (count_fences_at 633 o.Repair.repaired);
  Alcotest.(check (list string))
    "repair proven" []
    (Repair.verify_static ~original:entries o)

(* --- Random programs: the cross contract in miniature ----------------------- *)

let test_random_programs () =
  List.iter
    (fun model ->
      for seed = 0 to 99 do
        let p = Gen.generate (Gen.default_cfg model) (Pmtest_util.Rng.create seed) in
        match Cross.compare_pair Cross.Engine_vs_repair p with
        | Cross.Agree | Cross.Skip _ -> ()
        | Cross.Disagree d ->
          Alcotest.failf "%s seed %d: %s" (Model.kind_name model) seed d
      done)
    [ Model.X86; Model.Hops; Model.Eadr ]

let () =
  Alcotest.run "repair"
    [
      ( "edits",
        [
          Alcotest.test_case "clean trace untouched" `Quick test_clean_trace_untouched;
          Alcotest.test_case "redundant fence deleted" `Quick test_redundant_fence_deleted;
          Alcotest.test_case "duplicate flush deleted" `Quick test_duplicate_flush_deleted;
          Alcotest.test_case "unnecessary flush cascades" `Quick test_unnecessary_flush_cascades;
          Alcotest.test_case "overwide flush narrowed" `Quick test_overwide_flush_narrowed;
          Alcotest.test_case "missing flush+fence inserted" `Quick
            test_never_flushed_gets_flush_and_fence;
          Alcotest.test_case "missing fence inserted" `Quick test_flush_without_fence_gets_fence;
          Alcotest.test_case "HOPS drain is a dfence" `Quick test_hops_gets_dfence;
          Alcotest.test_case "eADR legacy flush deleted" `Quick test_eadr_deletes_legacy_flush;
          Alcotest.test_case "missing TX_ADD inserted" `Quick test_unlogged_tx_write_gets_log;
          Alcotest.test_case "logged tx write untouched" `Quick test_logged_tx_write_untouched;
        ] );
      ( "fixpoint",
        [
          Alcotest.test_case "idempotent" `Quick test_idempotent;
          Alcotest.test_case "machine lines" `Quick test_machine_lines;
          Alcotest.test_case "obs counters" `Quick test_obs_counters;
        ] );
      ( "pmfs",
        [
          Alcotest.test_case "fsync drain fence removed" `Quick test_pmfs_fsync_bug;
          Alcotest.test_case "empty-commit fence removed" `Quick test_pmfs_empty_tx_bug;
        ] );
      ( "contract",
        [ Alcotest.test_case "random programs repair and prove" `Quick test_random_programs ] );
    ]
