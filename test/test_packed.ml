(* The packed trace codec and the flat checking path: round trips across
   all wire tags, decode identity on the regression corpus, report
   equality between Engine.check and Engine.check_packed, arena freelist
   behavior, and the packed session end to end. *)

open Pmtest_model
open Pmtest_trace
module Engine = Pmtest_core.Engine
module Report = Pmtest_core.Report
module Pmtest = Pmtest_core.Pmtest
module Repro = Pmtest_fuzz.Repro
module Gen = Pmtest_fuzz.Gen
module Obs = Pmtest_obs.Obs
module Loc = Pmtest_util.Loc

(* One event per wire tag (18), mirroring test_serial's sample. *)
let sample_entries =
  [|
    Event.make ~thread:2
      ~loc:(Loc.make ~file:"dir/my file.c" ~line:42)
      (Event.Op (Model.Write { addr = 0x100; size = 64 }));
    Event.make (Event.Op (Model.Clwb { addr = 0x100; size = 64 }));
    Event.make (Event.Op Model.Sfence);
    Event.make (Event.Op Model.Ofence);
    Event.make (Event.Op Model.Dfence);
    Event.make (Event.Op Model.Gpf);
    Event.make (Event.Checker (Event.Is_persist { addr = 0x40; size = 8 }));
    Event.make
      (Event.Checker (Event.Is_ordered_before { a_addr = 1; a_size = 2; b_addr = 3; b_size = 4 }));
    Event.make (Event.Tx Event.Tx_begin);
    Event.make (Event.Tx (Event.Tx_add { addr = 7; size = 9 }));
    Event.make (Event.Tx Event.Tx_commit);
    Event.make (Event.Tx Event.Tx_abort);
    Event.make (Event.Tx Event.Tx_checker_start);
    Event.make (Event.Tx Event.Tx_checker_end);
    Event.make (Event.Control (Event.Exclude { addr = 0; size = 128 }));
    Event.make (Event.Control (Event.Include { addr = 0; size = 64 }));
    Event.make (Event.Control (Event.Lint_off { rule = "flush-without-fence" }));
    Event.make (Event.Control (Event.Lint_on { rule = "flush-without-fence" }));
  |]

let entries_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (x : Event.t) (y : Event.t) ->
         x.Event.kind = y.Event.kind && x.Event.thread = y.Event.thread
         && Loc.equal x.Event.loc y.Event.loc)
       a b

let test_round_trip_all_tags () =
  let p = Packed.of_events sample_entries in
  Alcotest.(check int) "count" (Array.length sample_entries) (Packed.count p);
  Alcotest.(check bool) "decode identity" true (entries_equal sample_entries (Packed.to_events p));
  (* A second decode must see the same events — the cursor resets. *)
  Alcotest.(check bool) "decode is repeatable" true
    (entries_equal sample_entries (Packed.to_events p))

let test_tag_coverage () =
  (* Every tag constructor must be reachable from sample_entries, so the
     round-trip test cannot silently lose a wire shape. *)
  let seen = Hashtbl.create 18 in
  let p = Packed.of_events sample_entries in
  Packed.iter p (fun v -> Hashtbl.replace seen v.Packed.tag ());
  Alcotest.(check int) "all 18 tags exercised" 18 (Hashtbl.length seen)

let test_serial_packed_agree () =
  (* packed -> boxed -> Serial -> boxed -> packed: both codecs preserve
     the same entries. *)
  let boxed = Packed.to_events (Packed.of_events sample_entries) in
  let tmp = Filename.temp_file "pmtest_packed" ".trace" in
  Serial.save_file tmp boxed;
  let reloaded =
    match Serial.load_file tmp with Ok t -> t | Error e -> Alcotest.fail e
  in
  Sys.remove tmp;
  Alcotest.(check bool) "serial round trip of decoded packed" true
    (entries_equal sample_entries reloaded);
  Alcotest.(check bool) "re-pack of serial reload" true
    (entries_equal sample_entries (Packed.to_events (Packed.of_events reloaded)))

(* Random events exercising varint widths, interning and rule strings. *)
let gen_entry =
  QCheck2.Gen.(
    let addr = int_range 0 (1 lsl 20) and size = int_range 1 4096 in
    let loc =
      oneof
        [
          return Loc.none;
          map2
            (fun f l -> Loc.make ~file:("f" ^ string_of_int f) ~line:l)
            (int_range 0 5) (int_range 0 999);
        ]
    in
    let kind =
      oneof
        [
          map2 (fun addr size -> Event.Op (Model.Write { addr; size })) addr size;
          map2 (fun addr size -> Event.Op (Model.Clwb { addr; size })) addr size;
          oneofl
            [
              Event.Op Model.Sfence;
              Event.Op Model.Ofence;
              Event.Op Model.Dfence;
              Event.Op Model.Gpf;
            ];
          map2 (fun addr size -> Event.Checker (Event.Is_persist { addr; size })) addr size;
          map2
            (fun a b ->
              Event.Checker
                (Event.Is_ordered_before { a_addr = a; a_size = 8; b_addr = b; b_size = 8 }))
            addr addr;
          map2 (fun addr size -> Event.Tx (Event.Tx_add { addr; size })) addr size;
          oneofl
            [
              Event.Tx Event.Tx_begin;
              Event.Tx Event.Tx_commit;
              Event.Tx Event.Tx_abort;
              Event.Tx Event.Tx_checker_start;
              Event.Tx Event.Tx_checker_end;
            ];
          map2 (fun addr size -> Event.Control (Event.Exclude { addr; size })) addr size;
          map2 (fun addr size -> Event.Control (Event.Include { addr; size })) addr size;
          (oneofl [ "flush-without-fence"; "unflushed-write"; "*"; "" ] >|= fun rule ->
           Event.Control (Event.Lint_off { rule }));
          (oneofl [ "redundant-fence"; "*" ] >|= fun rule ->
           Event.Control (Event.Lint_on { rule }));
        ]
    in
    map3 (fun kind loc thread -> Event.make ~thread ~loc kind) kind loc (int_range 0 7))

let prop_packed_round_trip =
  QCheck2.Test.make ~name:"packed round trip" ~count:500
    QCheck2.Gen.(array_size (int_range 0 64) gen_entry)
    (fun evs -> entries_equal evs (Packed.to_events (Packed.of_events evs)))

let prop_check_packed_equals_boxed =
  QCheck2.Test.make ~name:"check_packed equals check" ~count:300
    QCheck2.Gen.(
      pair
        (array_size (int_range 0 48) gen_entry)
        (oneofl Model.all_kinds))
    (fun (evs, model) ->
      let key (r : Report.t) =
        ( List.map
            (fun (d : Report.diagnostic) -> (d.Report.kind, d.Report.loc, d.Report.message))
            r.Report.diagnostics,
          r.Report.entries,
          r.Report.ops,
          r.Report.checkers )
      in
      key (Engine.check ~model evs) = key (Engine.check_packed ~model (Packed.of_events evs)))

let corpus_dir = "../fuzz/corpus"

let corpus_cases () =
  match Repro.load_dir corpus_dir with
  | Ok cases ->
    if cases = [] then Alcotest.fail "empty corpus";
    cases
  | Error e -> Alcotest.fail e

let test_corpus_decode_identity () =
  List.iter
    (fun (c : Repro.case) ->
      let evs = c.Repro.program.Gen.events in
      Alcotest.(check bool)
        (c.Repro.name ^ " decodes identically")
        true
        (entries_equal evs (Packed.to_events (Packed.of_events evs))))
    (corpus_cases ())

let test_corpus_reports_identical () =
  List.iter
    (fun (c : Repro.case) ->
      let p = c.Repro.program in
      let key (r : Report.t) =
        List.map
          (fun (d : Report.diagnostic) -> (d.Report.kind, d.Report.loc, d.Report.message))
          r.Report.diagnostics
      in
      Alcotest.(check bool)
        (c.Repro.name ^ " same report through both paths")
        true
        (key (Engine.check ~model:p.Gen.model p.Gen.events)
        = key (Engine.check_packed ~model:p.Gen.model (Packed.of_events p.Gen.events))))
    (corpus_cases ())

let test_freelist_recycles () =
  let obs = Obs.create () in
  let a = Packed.alloc ~obs () in
  Packed.push_write a ~thread:0 ~addr:0 ~size:8 Loc.none;
  Packed.free a;
  let b = Packed.alloc ~obs () in
  Alcotest.(check bool) "recycled arena is empty" true (Packed.is_empty b);
  Packed.free b;
  let snap = Obs.snapshot obs in
  Alcotest.(check int) "two allocs accounted" 2 snap.Obs.arenas_allocated;
  Alcotest.(check bool) "at least one reuse" true (snap.Obs.arenas_reused >= 1)

(* --- Wire codec and typed decode errors ------------------------------------ *)

let test_wire_round_trip () =
  let p = Packed.of_events sample_entries in
  let s = Packed.encode_wire p in
  match Packed.decode_wire s with
  | Error e -> Alcotest.fail (Packed.decode_error_to_string e)
  | Ok q ->
    Alcotest.(check bool) "wire round trip preserves entries" true
      (entries_equal sample_entries (Packed.to_events q))

let expect_decode_error name s =
  match Packed.decode_wire s with
  | Ok _ -> Alcotest.failf "%s: decoded successfully" name
  | Error e ->
    (* The error must carry a usable position and reason, not just fail. *)
    Alcotest.(check bool) (name ^ " offset in range") true (e.Packed.offset >= 0);
    Alcotest.(check bool) (name ^ " has a reason") true (String.length e.Packed.reason > 0)

let test_wire_truncated () =
  let s = Packed.encode_wire (Packed.of_events sample_entries) in
  (* Every proper prefix must fail with a typed error, never raise. *)
  for len = 0 to min 64 (String.length s - 1) do
    expect_decode_error (Printf.sprintf "prefix of %d bytes" len) (String.sub s 0 len)
  done;
  expect_decode_error "one byte short" (String.sub s 0 (String.length s - 1))

let test_wire_garbage () =
  let rng = Pmtest_util.Rng.create 7 in
  for i = 0 to 99 do
    let len = Pmtest_util.Rng.int rng 200 in
    let s = String.init len (fun _ -> Char.chr (Pmtest_util.Rng.int rng 256)) in
    match Packed.decode_wire s with
    | Error _ -> ()
    | Ok q ->
      (* Random bytes may parse by luck, but then the arena must be
         fully valid — [to_events] must not raise. *)
      (try ignore (Packed.to_events q)
       with e ->
         Alcotest.failf "garbage %d decoded but to_events raised %s" i (Printexc.to_string e))
  done

let test_wire_corrupted_tag () =
  let s = Packed.encode_wire (Packed.of_events sample_entries) in
  let b = Bytes.of_string s in
  (* Smash bytes one at a time; decode must return a typed error or a
     still-valid arena — never throw. *)
  for pos = 0 to min 63 (Bytes.length b - 1) do
    let orig = Bytes.get b pos in
    Bytes.set b pos (Char.chr (Char.code orig lxor 0xff));
    (match Packed.decode_wire (Bytes.to_string b) with
    | Error _ -> ()
    | Ok q -> ignore (Packed.to_events q));
    Bytes.set b pos orig
  done

let check_session ~packed ~workers () =
  let t = Pmtest.init ~model:Model.X86 ~workers ~packed () in
  (* Two sections with an exclusion scope crossing the boundary, checkers
     on both sides — exercises the preamble fallback and the fast path. *)
  Pmtest.emit t (Event.Op (Model.Write { addr = 0x00; size = 8 }));
  Pmtest.emit t (Event.Op (Model.Clwb { addr = 0x00; size = 8 }));
  Pmtest.emit t (Event.Op Model.Sfence);
  Pmtest.is_persist t ~addr:0x00 ~size:8;
  Pmtest.exclude t ~addr:0x100 ~size:0x10;
  Pmtest.emit t (Event.Op (Model.Write { addr = 0x100; size = 8 }));
  Pmtest.send_trace t;
  Pmtest.emit t (Event.Op (Model.Write { addr = 0x40; size = 8 }));
  Pmtest.is_persist t ~addr:0x40 ~size:8;
  Pmtest.emit t (Event.Op (Model.Write { addr = 0x104; size = 4 }));
  Pmtest.include_ t ~addr:0x100 ~size:0x10;
  Pmtest.send_trace t;
  Pmtest.emit t (Event.Op (Model.Write { addr = 0x200; size = 8 }));
  Pmtest.finish t

let report_key (r : Report.t) =
  ( List.sort compare
      (List.map
         (fun (d : Report.diagnostic) -> (Report.kind_string d.Report.kind, d.Report.message))
         r.Report.diagnostics),
    r.Report.ops,
    r.Report.checkers )

let test_packed_session_equals_boxed () =
  let boxed = check_session ~packed:false ~workers:0 () in
  List.iter
    (fun workers ->
      let packed = check_session ~packed:true ~workers () in
      Alcotest.(check bool)
        (Printf.sprintf "same verdict, packed session, %d worker(s)" workers)
        true
        (report_key packed = report_key boxed))
    [ 0; 1; 2 ]

let test_packed_session_observers_see_sections () =
  (* Observers force the boxed fallback; the decoded sections must carry
     exactly what was traced. *)
  let t = Pmtest.init ~model:Model.X86 ~workers:0 ~packed:true () in
  let seen = ref 0 in
  Pmtest.on_section t (fun section -> seen := !seen + Array.length section);
  Pmtest.emit t (Event.Op (Model.Write { addr = 0; size = 8 }));
  Pmtest.emit t (Event.Op (Model.Clwb { addr = 0; size = 8 }));
  Pmtest.emit t (Event.Op Model.Sfence);
  Pmtest.send_trace t;
  ignore (Pmtest.finish t);
  Alcotest.(check int) "observer saw every entry" 3 !seen

let () =
  Alcotest.run "packed"
    [
      ( "codec",
        [
          Alcotest.test_case "round trip of every wire tag" `Quick test_round_trip_all_tags;
          Alcotest.test_case "all 18 tags reachable" `Quick test_tag_coverage;
          Alcotest.test_case "agrees with the serial codec" `Quick test_serial_packed_agree;
          Alcotest.test_case "freelist recycles arenas" `Quick test_freelist_recycles;
        ] );
      ( "wire",
        [
          Alcotest.test_case "encode/decode round trip" `Quick test_wire_round_trip;
          Alcotest.test_case "typed errors on truncation" `Quick test_wire_truncated;
          Alcotest.test_case "typed errors on garbage" `Quick test_wire_garbage;
          Alcotest.test_case "byte corruption never raises" `Quick test_wire_corrupted_tag;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "decode identity on every case" `Quick test_corpus_decode_identity;
          Alcotest.test_case "reports identical on every case" `Quick test_corpus_reports_identical;
        ] );
      ( "session",
        [
          Alcotest.test_case "packed session equals boxed" `Quick test_packed_session_equals_boxed;
          Alcotest.test_case "observers see decoded sections" `Quick
            test_packed_session_observers_see_sections;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_packed_round_trip; prop_check_packed_equals_boxed ] );
    ]
