(* Trace serialization: textual round trips, error reporting, and the
   record-then-check-offline workflow. *)

open Pmtest_model
open Pmtest_trace
open Pmtest_pmdk
module Engine = Pmtest_core.Engine
module Report = Pmtest_core.Report
module Sink = Pmtest_trace.Sink

let sample_entries =
  [|
    Event.make ~thread:2
      ~loc:(Pmtest_util.Loc.make ~file:"dir/my file.c" ~line:42)
      (Event.Op (Model.Write { addr = 0x100; size = 64 }));
    Event.make (Event.Op (Model.Clwb { addr = 0x100; size = 64 }));
    Event.make (Event.Op Model.Sfence);
    Event.make (Event.Op Model.Ofence);
    Event.make (Event.Op Model.Dfence);
    Event.make (Event.Op Model.Gpf);
    Event.make (Event.Checker (Event.Is_persist { addr = 0x40; size = 8 }));
    Event.make
      (Event.Checker (Event.Is_ordered_before { a_addr = 1; a_size = 2; b_addr = 3; b_size = 4 }));
    Event.make (Event.Tx Event.Tx_begin);
    Event.make (Event.Tx (Event.Tx_add { addr = 7; size = 9 }));
    Event.make (Event.Tx Event.Tx_commit);
    Event.make (Event.Tx Event.Tx_abort);
    Event.make (Event.Tx Event.Tx_checker_start);
    Event.make (Event.Tx Event.Tx_checker_end);
    Event.make (Event.Control (Event.Exclude { addr = 0; size = 128 }));
    Event.make (Event.Control (Event.Include { addr = 0; size = 64 }));
    Event.make (Event.Control (Event.Lint_off { rule = "flush-without-fence" }));
    Event.make (Event.Control (Event.Lint_on { rule = "flush-without-fence" }));
  |]

(* Every wire tag the format defines; [sample_entries] must exercise all
   of them so the round-trip test cannot silently lose a constructor. *)
let all_tags =
  [
    "w"; "f"; "s"; "o"; "d"; "g"; "cp"; "co"; "tb"; "tc"; "ta"; "tA"; "ts"; "te"; "xe"; "xi";
    "lo"; "li";
  ]

let test_sample_covers_every_tag () =
  let tag (e : Event.t) =
    match String.split_on_char '\t' (Serial.entry_to_line e) with
    | t :: _ -> t
    | [] -> Alcotest.fail "empty serialized line"
  in
  let seen = Array.to_list (Array.map tag sample_entries) in
  List.iter
    (fun t ->
      Alcotest.(check bool) (Printf.sprintf "tag %S exercised" t) true (List.mem t seen))
    all_tags;
  List.iter
    (fun t ->
      Alcotest.(check bool) (Printf.sprintf "tag %S is defined" t) true (List.mem t all_tags))
    seen

let entries_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (x : Event.t) (y : Event.t) ->
         x.Event.kind = y.Event.kind && x.Event.thread = y.Event.thread
         && Pmtest_util.Loc.equal x.Event.loc y.Event.loc)
       a b

let test_round_trip_all_kinds () =
  let tmp = Filename.temp_file "pmtest" ".trace" in
  Serial.save_file tmp sample_entries;
  (match Serial.load_file tmp with
  | Ok got -> Alcotest.(check bool) "identical after round trip" true (entries_equal sample_entries got)
  | Error e -> Alcotest.fail e);
  Sys.remove tmp

let test_malformed_line_reported () =
  match Serial.entry_of_line "zz\t0\t-\t0" with
  | Error msg -> Alcotest.(check bool) "names the line" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "accepted garbage"

let test_offline_check_equals_online () =
  (* Record a buggy workload, write the trace out, read it back and check
     offline: the verdict must match checking the live trace. *)
  let sink, recorded = Serial.recording_sink () in
  let pool = Pool.create ~size:(1 lsl 21) ~sink () in
  let m = Ctree_map.create pool in
  for i = 0 to 7 do
    Pool.tx_checker_start pool;
    Ctree_map.insert ~bug:Ctree_map.Skip_log_root m ~key:(Int64.of_int i)
      ~value:(Bytes.of_string "x");
    Pool.tx_checker_end pool
  done;
  let live = recorded () in
  let tmp = Filename.temp_file "pmtest" ".trace" in
  Serial.save_file tmp live;
  let offline =
    match Serial.load_file tmp with Ok t -> t | Error e -> Alcotest.fail e
  in
  Sys.remove tmp;
  let k report =
    List.sort compare
      (List.map (fun d -> Report.kind_string d.Report.kind) report.Report.diagnostics)
  in
  Alcotest.(check (list string))
    "same diagnostics offline" (k (Engine.check live)) (k (Engine.check offline));
  Alcotest.(check bool) "bug detected" true
    (Report.count Report.Missing_log (Engine.check offline) > 0)

let gen_entry =
  QCheck2.Gen.(
    let addr = int_range 0 4096 and size = int_range 1 128 in
    let loc =
      oneof
        [
          return Pmtest_util.Loc.none;
          map2 (fun f l -> Pmtest_util.Loc.make ~file:("f" ^ string_of_int f) ~line:l) (int_range 0 5)
            (int_range 0 999);
        ]
    in
    let kind =
      oneof
        [
          map2 (fun addr size -> Event.Op (Model.Write { addr; size })) addr size;
          map2 (fun addr size -> Event.Op (Model.Clwb { addr; size })) addr size;
          oneofl
            [
              Event.Op Model.Sfence;
              Event.Op Model.Ofence;
              Event.Op Model.Dfence;
              Event.Op Model.Gpf;
            ];
          map2 (fun addr size -> Event.Checker (Event.Is_persist { addr; size })) addr size;
          map2
            (fun a b ->
              Event.Checker (Event.Is_ordered_before { a_addr = a; a_size = 8; b_addr = b; b_size = 8 }))
            addr addr;
          map2 (fun addr size -> Event.Tx (Event.Tx_add { addr; size })) addr size;
          oneofl
            [
              Event.Tx Event.Tx_begin;
              Event.Tx Event.Tx_commit;
              Event.Tx Event.Tx_abort;
              Event.Tx Event.Tx_checker_start;
              Event.Tx Event.Tx_checker_end;
            ];
          map2 (fun addr size -> Event.Control (Event.Exclude { addr; size })) addr size;
          map2 (fun addr size -> Event.Control (Event.Include { addr; size })) addr size;
          (oneofl [ "flush-without-fence"; "unflushed-write"; "*" ] >|= fun rule ->
           Event.Control (Event.Lint_off { rule }));
          (oneofl [ "redundant-fence"; "*" ] >|= fun rule ->
           Event.Control (Event.Lint_on { rule }));
        ]
    in
    map3 (fun kind loc thread -> Event.make ~thread ~loc kind) kind loc (int_range 0 7))

let prop_line_round_trip =
  QCheck2.Test.make ~name:"entry/line round trip" ~count:500 gen_entry (fun e ->
      match Serial.entry_of_line (Serial.entry_to_line e) with
      | Ok e' ->
        e'.Event.kind = e.Event.kind && e'.Event.thread = e.Event.thread
        && Pmtest_util.Loc.equal e'.Event.loc e.Event.loc
      | Error _ -> false)

let () =
  Alcotest.run "serial"
    [
      ( "serialization",
        [
          Alcotest.test_case "round trip of every entry kind" `Quick test_round_trip_all_kinds;
          Alcotest.test_case "sample covers every wire tag" `Quick test_sample_covers_every_tag;
          Alcotest.test_case "malformed lines reported" `Quick test_malformed_line_reported;
          Alcotest.test_case "offline check equals online" `Quick test_offline_check_equals_online;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_line_round_trip ]);
    ]
