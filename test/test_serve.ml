(* pmtestd end to end: serve-vs-in-process report identity over the bug
   catalog, robustness against clients dying mid-frame and garbage
   sections, admission control, the shed backpressure policy, idle
   timeouts, and SIGTERM drain of the real CLI daemon. *)

open Pmtest_model
open Pmtest_trace
module Report = Pmtest_core.Report
module Pmtest = Pmtest_core.Pmtest
module Obs = Pmtest_obs.Obs
module Wire = Pmtest_wire.Wire
module Server = Pmtest_server.Server
module Client = Pmtest_client.Client
module Case = Pmtest_bugdb.Case
module Catalog = Pmtest_bugdb.Catalog

let next_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pmtest-serve-test-%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?obs ?(cfg = Server.default_config) f =
  let socket = next_socket () in
  let t = Server.start ?obs { cfg with Server.socket } in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f socket t)

let render r = Format.asprintf "%a" Report.pp r

(* Drive one event stream through [emit]/[flush] with fixed chunking, so
   the remote and the in-process side see identical section streams. *)
let drive ~emit ~flush entries =
  Array.iteri
    (fun i (e : Event.t) ->
      emit e;
      if (i + 1) mod 32 = 0 then flush e.Event.thread)
    entries

let local_report ~model entries =
  let t = Pmtest.init ~model ~workers:0 ~packed:true () in
  let seen = Hashtbl.create 4 in
  drive
    ~emit:(fun (e : Event.t) ->
      if not (Hashtbl.mem seen e.Event.thread) then begin
        Hashtbl.replace seen e.Event.thread ();
        if e.Event.thread <> 0 then Pmtest.thread_init t ~thread:e.Event.thread
      end;
      Pmtest.emit ~thread:e.Event.thread ~loc:e.Event.loc t e.Event.kind)
    ~flush:(fun th -> Pmtest.send_trace ~thread:th t)
    entries;
  Pmtest.finish t

let remote_report ~socket ~model entries =
  match Client.connect ~model ~socket () with
  | Error m -> Alcotest.failf "connect: %s" m
  | Ok conn ->
    let s = Client.Session.make conn in
    drive
      ~emit:(fun (e : Event.t) ->
        Client.Session.emit ~thread:e.Event.thread ~loc:e.Event.loc s e.Event.kind)
      ~flush:(fun th -> Client.Session.send_trace ~thread:th s)
      entries;
    let r = Client.Session.finish s in
    Client.close conn;
    (match r with Ok r -> r | Error m -> Alcotest.failf "finish: %s" m)

let test_serve_equals_in_process_bugdb () =
  with_server (fun socket _t ->
      List.iter
        (fun (case : Case.t) ->
          List.iter
            (fun (name, entries) ->
              Alcotest.(check string)
                (Printf.sprintf "%s (%s) identical over the wire" case.Case.id name)
                (render (local_report ~model:Model.X86 entries))
                (render (remote_report ~socket ~model:Model.X86 entries)))
            [ ("buggy", Case.trace case); ("clean", Case.trace_clean case) ])
        Catalog.all)

let test_concurrent_sessions_isolated () =
  (* Several sessions on one daemon, interleaved: each aggregate must be
     exactly what a dedicated run over that session's trace yields. *)
  with_server (fun socket _t ->
      let cases =
        match Catalog.all with a :: b :: c :: _ -> [ a; b; c ] | _ -> Alcotest.fail "catalog"
      in
      let results = Array.make (List.length cases) (Ok Report.empty) in
      let threads =
        List.mapi
          (fun i (case : Case.t) ->
            Thread.create
              (fun () ->
                try results.(i) <- Ok (remote_report ~socket ~model:Model.X86 (Case.trace case))
                with e -> results.(i) <- Error (Printexc.to_string e))
              ())
          cases
      in
      List.iter Thread.join threads;
      List.iteri
        (fun i (case : Case.t) ->
          match results.(i) with
          | Error m -> Alcotest.failf "%s: %s" case.Case.id m
          | Ok r ->
            Alcotest.(check string)
              (case.Case.id ^ " unaffected by concurrent sessions")
              (render (local_report ~model:Model.X86 (Case.trace case)))
              (render r))
        cases)

(* --- Robustness -------------------------------------------------------------- *)

let connect_raw socket =
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Unix.connect fd (ADDR_UNIX socket);
  (match Wire.write_frame fd Wire.Hello (Wire.encode_hello ~model:Model.X86) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Wire.error_to_string e));
  (match Wire.read_frame fd with
  | Ok (Wire.Hello_ack, _) -> ()
  | Ok (k, _) -> Alcotest.failf "expected hello_ack, got %s" (Wire.kind_name k)
  | Error e -> Alcotest.fail (Wire.error_to_string e));
  fd

let wait_for cond =
  let rec go n =
    if cond () then ()
    else if n = 0 then Alcotest.fail "condition not reached within 5s"
    else begin
      Thread.delay 0.05;
      go (n - 1)
    end
  in
  go 100

let test_client_killed_mid_frame () =
  let obs = Obs.create () in
  with_server ~obs (fun socket t ->
      let fd = connect_raw socket in
      (* A frame header promising 4096 payload bytes, then silence: the
         client "crashes" mid-frame. *)
      let header = Bytes.make Wire.header_len '\x00' in
      Bytes.set header 0 (Char.chr Wire.version);
      Bytes.set header 1 (Char.chr (Wire.kind_code Wire.Section));
      Bytes.set header 4 '\x10' (* len = 4096, big-endian at offset 2 *);
      ignore (Unix.write fd header 0 Wire.header_len);
      ignore (Unix.write_substring fd "only part of it" 0 15);
      Unix.close fd;
      (* The daemon must shrug the session off... *)
      wait_for (fun () -> Server.active_sessions t = 0);
      (* ... and keep serving: a fresh session still round-trips. *)
      let case = List.hd Catalog.all in
      Alcotest.(check string) "daemon survives a mid-frame crash"
        (render (local_report ~model:Model.X86 (Case.trace case)))
        (render (remote_report ~socket ~model:Model.X86 (Case.trace case)));
      let snap = Obs.snapshot obs in
      Alcotest.(check bool) "torn frame counted" true (snap.Obs.serve.Obs.frames_corrupt >= 1))

let test_garbage_section_rejected () =
  with_server (fun socket t ->
      let fd = connect_raw socket in
      (* Valid CRC, hostile payload: must come back as Err, not take a
         checking worker down. *)
      (match Wire.write_frame fd Wire.Section "\xff\xff\xff\xff" with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Wire.error_to_string e));
      (match Wire.read_frame fd with
      | Ok (Wire.Err, _) -> ()
      | Ok (k, _) -> Alcotest.failf "expected err, got %s" (Wire.kind_name k)
      | Error e -> Alcotest.failf "expected err frame, got %s" (Wire.error_to_string e));
      Unix.close fd;
      wait_for (fun () -> Server.active_sessions t = 0))

let test_max_sessions_rejected () =
  with_server
    ~cfg:{ Server.default_config with Server.max_sessions = 1 }
    (fun socket _t ->
      match Client.connect ~socket () with
      | Error m -> Alcotest.failf "first connect: %s" m
      | Ok c1 ->
        (match Client.connect ~socket () with
        | Ok _ -> Alcotest.fail "second session admitted past max-sessions=1"
        | Error m ->
          Alcotest.(check bool)
            ("rejection names the limit: " ^ m)
            true
            (String.length m > 0));
        Client.close c1)

let buggy_section =
  [|
    Event.make (Event.Op (Model.Write { addr = 0x100; size = 8 }));
    Event.make (Event.Checker (Event.Is_persist { addr = 0x100; size = 8 }));
  |]

let test_shed_policy_drops () =
  let obs = Obs.create () in
  with_server ~obs
    ~cfg:{ Server.default_config with Server.policy = Wire.Shed; max_inflight = 0 }
    (fun socket _t ->
      (* max_inflight=0 + Shed sheds deterministically: every section is
         dropped, so the aggregate stays empty — but the session itself
         stays healthy. *)
      match Client.connect ~socket () with
      | Error m -> Alcotest.failf "connect: %s" m
      | Ok c ->
        (match Client.policy c with
        | Wire.Shed -> ()
        | Wire.Block -> Alcotest.fail "server did not announce shed policy");
        for _ = 1 to 5 do
          match Client.send_events c buggy_section with
          | Ok () -> ()
          | Error m -> Alcotest.failf "send: %s" m
        done;
        (match Client.get_result c with
        | Error m -> Alcotest.failf "get_result: %s" m
        | Ok r -> Alcotest.(check int) "everything shed, nothing checked" 0 r.Report.entries);
        Client.close c;
        let snap = Obs.snapshot obs in
        Alcotest.(check int) "five sections shed" 5 snap.Obs.serve.Obs.sections_shed)

let test_idle_timeout_disconnects () =
  with_server
    ~cfg:{ Server.default_config with Server.idle_timeout = 0.3 }
    (fun socket t ->
      match Client.connect ~socket () with
      | Error m -> Alcotest.failf "connect: %s" m
      | Ok c ->
        Thread.delay 0.8;
        (match Client.get_result c with
        | Ok _ -> Alcotest.fail "session survived past the idle timeout"
        | Error _ -> ());
        Client.close c;
        wait_for (fun () -> Server.active_sessions t = 0))

(* --- Shards ------------------------------------------------------------------- *)

let test_session_churn_across_shards () =
  (* 32 sessions against a 4-shard daemon, half of which die mid-stream:
     admission must spread sessions over every shard, the casualties must
     not wedge their shard, and every surviving session's aggregate must
     stay byte-identical to a dedicated in-process run. *)
  let obs = Obs.create () in
  with_server ~obs
    ~cfg:{ Server.default_config with Server.shards = 4; workers = 1; max_sessions = 64 }
    (fun socket t ->
      Alcotest.(check int) "shard count" 4 (Server.shard_count t);
      let cases = Array.of_list Catalog.all in
      let survivors = 16 and churners = 16 in
      let results = Array.make survivors (Ok Report.empty) in
      let survivor_threads =
        List.init survivors (fun i ->
            let case = cases.(i mod Array.length cases) in
            Thread.create
              (fun () ->
                try results.(i) <- Ok (remote_report ~socket ~model:Model.X86 (Case.trace case))
                with e -> results.(i) <- Error (Printexc.to_string e))
              ())
      in
      let churn_threads =
        List.init churners (fun _ ->
            Thread.create
              (fun () ->
                (* Handshake, start a section frame, die mid-payload. *)
                let fd = connect_raw socket in
                let header = Bytes.make Wire.header_len '\x00' in
                Bytes.set header 0 (Char.chr Wire.version);
                Bytes.set header 1 (Char.chr (Wire.kind_code Wire.Section));
                Bytes.set header 4 '\x10';
                ignore (Unix.write fd header 0 Wire.header_len);
                Unix.close fd)
              ())
      in
      List.iter Thread.join survivor_threads;
      List.iter Thread.join churn_threads;
      List.iteri
        (fun i r ->
          let case = cases.(i mod Array.length cases) in
          match r with
          | Error m -> Alcotest.failf "survivor %d (%s): %s" i case.Case.id m
          | Ok r ->
            Alcotest.(check string)
              (Printf.sprintf "survivor %d (%s) byte-identical" i case.Case.id)
              (render (local_report ~model:Model.X86 (Case.trace case)))
              (render r))
        (Array.to_list results);
      wait_for (fun () -> Server.active_sessions t = 0);
      wait_for (fun () -> Array.for_all (fun n -> n = 0) (Server.sessions_per_shard t));
      let snap = Obs.snapshot obs in
      Alcotest.(check int) "per-shard admissions cover all four shards" 4
        (List.length snap.Obs.shards);
      Alcotest.(check int) "every session was pinned somewhere"
        (survivors + churners)
        (List.fold_left (fun n (sh : Obs.shard_stat) -> n + sh.Obs.shard_sessions) 0
           snap.Obs.shards);
      List.iter
        (fun (sh : Obs.shard_stat) ->
          Alcotest.(check bool)
            (Printf.sprintf "shard %d admitted sessions" sh.Obs.shard)
            true (sh.Obs.shard_sessions > 0))
        snap.Obs.shards)

let test_mid_frame_kill_on_nonzero_shard () =
  (* Pin one healthy session to shard 0, then kill a second session —
     least-loaded admission puts it on shard 1 — mid-frame.  The crash
     must stay contained in shard 1: the daemon keeps serving and the
     shard-0 session still produces the exact in-process report. *)
  with_server
    ~cfg:{ Server.default_config with Server.shards = 2; workers = 1 }
    (fun socket t ->
      let case = List.hd Catalog.all in
      match Client.connect ~model:Model.X86 ~socket () with
      | Error m -> Alcotest.failf "connect: %s" m
      | Ok conn ->
        Alcotest.(check (array int))
          "healthy session pinned to shard 0" [| 1; 0 |]
          (Server.sessions_per_shard t);
        let fd = connect_raw socket in
        Alcotest.(check (array int))
          "second connection pinned to shard 1" [| 1; 1 |]
          (Server.sessions_per_shard t);
        (* Mid-frame death on shard 1. *)
        let header = Bytes.make Wire.header_len '\x00' in
        Bytes.set header 0 (Char.chr Wire.version);
        Bytes.set header 1 (Char.chr (Wire.kind_code Wire.Section));
        Bytes.set header 4 '\x10';
        ignore (Unix.write fd header 0 Wire.header_len);
        ignore (Unix.write_substring fd "partial" 0 7);
        Unix.close fd;
        wait_for (fun () -> (Server.sessions_per_shard t).(1) = 0);
        (* Shard 0's session is unharmed and still deterministic. *)
        let s = Client.Session.make conn in
        drive
          ~emit:(fun (e : Event.t) ->
            Client.Session.emit ~thread:e.Event.thread ~loc:e.Event.loc s e.Event.kind)
          ~flush:(fun th -> Client.Session.send_trace ~thread:th s)
          (Case.trace case);
        (match Client.Session.finish s with
        | Error m -> Alcotest.failf "finish: %s" m
        | Ok r ->
          Alcotest.(check string) "shard-0 report unharmed"
            (render (local_report ~model:Model.X86 (Case.trace case)))
            (render r));
        Client.close conn;
        (* And shard 1 still admits fresh sessions after the crash. *)
        Alcotest.(check string) "shard 1 keeps serving"
          (render (local_report ~model:Model.X86 (Case.trace case)))
          (render (remote_report ~socket ~model:Model.X86 (Case.trace case))))

(* --- SIGTERM drain of the real daemon ----------------------------------------- *)

let cli_exe = "../bin/pmtest_cli.exe"

let test_sigterm_drains_cli_daemon () =
  let socket = next_socket () in
  let out = Filename.temp_file "pmtest-serve-drain" ".log" in
  let fd = Unix.openfile out [ O_WRONLY; O_TRUNC ] 0o600 in
  let pid =
    Unix.create_process cli_exe
      [| cli_exe; "serve"; "--socket"; socket; "--workers"; "1" |]
      Unix.stdin fd fd
  in
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      (try Sys.remove out with Sys_error _ -> ());
      try Sys.remove socket with Sys_error _ -> ())
    (fun () ->
      wait_for (fun () -> Sys.file_exists socket);
      (* A full session against the spawned daemon... *)
      let case = List.hd Catalog.all in
      Alcotest.(check string) "report over the spawned daemon"
        (render (local_report ~model:Model.X86 (Case.trace case)))
        (render (remote_report ~socket ~model:Model.X86 (Case.trace case)));
      (* ... then SIGTERM must drain and exit 0, removing the socket. *)
      Unix.kill pid Sys.sigterm;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED n -> Alcotest.failf "daemon exited %d" n
      | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> Alcotest.failf "daemon killed by signal %d" s);
      Alcotest.(check bool) "socket unlinked on drain" false (Sys.file_exists socket))

(* --- Reconnect backoff ------------------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_connect_retry_gives_up () =
  (* No daemon, ever: every attempt fails, on_retry fires before each
     backoff sleep (attempts - 1 times), and the final error names the
     attempt budget.  Jitter keeps each delay within 0.5x..1.5x of the
     nominal doubling schedule. *)
  let socket = next_socket () in
  let retries = ref 0 in
  let delays = ref [] in
  match
    Client.connect_retry ~attempts:3 ~base_delay:0.01 ~max_delay:0.02
      ~on_retry:(fun ~attempt:_ ~delay _err ->
        incr retries;
        delays := delay :: !delays)
      ~socket ()
  with
  | Ok conn ->
    Client.close conn;
    Alcotest.fail "connected to a daemon that does not exist"
  | Error m ->
    Alcotest.(check int) "one retry per failed attempt but the last" 2 !retries;
    Alcotest.(check bool) "error names the attempt budget" true
      (contains m "after 3 attempt(s)");
    List.iter
      (fun d ->
        Alcotest.(check bool) "jittered delay within 0.5x..1.5x nominal" true
          (d >= 0.004 && d <= 0.032))
      !delays

let test_connect_retry_waits_for_daemon () =
  (* The daemon comes up while the client is backing off: the retry
     loop must land the connection instead of failing fast. *)
  let socket = next_socket () in
  let srv = ref None in
  let th =
    Thread.create
      (fun () ->
        Thread.delay 0.05;
        srv := Some (Server.start { Server.default_config with Server.socket }))
      ()
  in
  let r = Client.connect_retry ~model:Model.X86 ~attempts:10 ~base_delay:0.02 ~socket () in
  Thread.join th;
  Fun.protect
    ~finally:(fun () -> match !srv with Some s -> Server.stop s | None -> ())
    (fun () ->
      match r with
      | Ok conn -> Client.close conn
      | Error m -> Alcotest.failf "never connected: %s" m)

let () =
  Alcotest.run "serve"
    [
      ( "identity",
        [
          Alcotest.test_case "bugdb reports identical over the wire" `Quick
            test_serve_equals_in_process_bugdb;
          Alcotest.test_case "concurrent sessions are isolated" `Quick
            test_concurrent_sessions_isolated;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "client killed mid-frame" `Quick test_client_killed_mid_frame;
          Alcotest.test_case "garbage section rejected" `Quick test_garbage_section_rejected;
          Alcotest.test_case "max-sessions admission control" `Quick test_max_sessions_rejected;
          Alcotest.test_case "shed policy drops deterministically" `Quick test_shed_policy_drops;
          Alcotest.test_case "idle timeout disconnects" `Quick test_idle_timeout_disconnects;
        ] );
      ( "shards",
        [
          Alcotest.test_case "32-session churn across 4 shards" `Quick
            test_session_churn_across_shards;
          Alcotest.test_case "mid-frame kill on a non-zero shard" `Quick
            test_mid_frame_kill_on_nonzero_shard;
        ] );
      ( "reconnect",
        [
          Alcotest.test_case "backoff gives up after its attempt budget" `Quick
            test_connect_retry_gives_up;
          Alcotest.test_case "backoff survives a late daemon" `Quick
            test_connect_retry_waits_for_daemon;
        ] );
      ( "drain",
        [
          Alcotest.test_case "SIGTERM drains the CLI daemon" `Quick
            test_sigterm_drains_cli_daemon;
        ] );
    ]
