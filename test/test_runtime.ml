(* Worker-pool runtime and the Pmtest session API. *)

open Pmtest_model
open Pmtest_trace
module Runtime = Pmtest_core.Runtime
module Report = Pmtest_core.Report
module Pmtest = Pmtest_core.Pmtest

let w addr size = Event.make (Event.Op (Model.Write { addr; size }))
let clwb addr size = Event.make (Event.Op (Model.Clwb { addr; size }))
let sfence = Event.make (Event.Op Model.Sfence)
let is_persist addr size = Event.make (Event.Checker (Event.Is_persist { addr; size }))

let clean_section = [| w 0x100 8; clwb 0x100 8; sfence; is_persist 0x100 8 |]
let buggy_section = [| w 0x100 8; sfence; is_persist 0x100 8 |]

let test_sync_runtime () =
  let rt = Runtime.create ~workers:0 () in
  Runtime.send_trace rt clean_section;
  Runtime.send_trace rt buggy_section;
  let r = Runtime.shutdown rt in
  Alcotest.(check int) "one failure" 1 (List.length (Report.fails r));
  Alcotest.(check int) "all entries counted" 7 r.Report.entries

let test_worker_pool_aggregates () =
  let rt = Runtime.create ~workers:4 () in
  for _ = 1 to 50 do
    Runtime.send_trace rt clean_section;
    Runtime.send_trace rt buggy_section
  done;
  let r = Runtime.get_result rt in
  Alcotest.(check int) "50 failures" 50 (List.length (Report.fails r));
  Alcotest.(check int) "nothing pending" 0 (Runtime.pending rt);
  ignore (Runtime.shutdown rt)

let test_shutdown_idempotent () =
  let rt = Runtime.create ~workers:2 () in
  Runtime.send_trace rt clean_section;
  let a = Runtime.shutdown rt in
  let b = Runtime.shutdown rt in
  Alcotest.(check int) "same entries" a.Report.entries b.Report.entries;
  Alcotest.check_raises "send after shutdown"
    (Invalid_argument "Runtime.send_trace: runtime already shut down") (fun () ->
      Runtime.send_trace rt clean_section)

let test_traces_are_independent () =
  (* A fence in one section must not affect the next section's shadow
     state: each starts from a fresh timestamp. *)
  let rt = Runtime.create ~workers:1 () in
  Runtime.send_trace rt [| w 0x100 8; clwb 0x100 8 |];
  (* Unflushed end-of-section is not an error for PMTest (no checker). *)
  Runtime.send_trace rt [| is_persist 0x100 8 |];
  (* New section: 0x100 was never written HERE, so the checker passes. *)
  let r = Runtime.shutdown rt in
  Alcotest.(check bool) "clean" true (Report.is_clean r)

let test_parallel_deterministic () =
  (* The worker pool must merge per-section reports in send order, so a
     parallel run is byte-identical to the synchronous one on the same
     sections — fuzz campaigns rely on this to stay reproducible. *)
  let sections =
    List.init 40 (fun i ->
        let p =
          Pmtest_fuzz.Gen.generate
            (Pmtest_fuzz.Gen.default_cfg Model.X86)
            (Pmtest_util.Rng.create i)
        in
        p.Pmtest_fuzz.Gen.events)
  in
  let run workers =
    let rt = Runtime.create ~workers () in
    List.iter (Runtime.send_trace rt) sections;
    Format.asprintf "%a" Report.pp (Runtime.shutdown rt)
  in
  Alcotest.(check string) "workers=4 matches workers=0" (run 0) (run 4)

let test_packed_sections_deterministic () =
  (* Packed arenas through the pool must aggregate to the same report as
     boxed sections through the synchronous path — least-loaded dispatch
     and batch draining must not perturb merge order. *)
  let sections =
    List.init 40 (fun i ->
        let p =
          Pmtest_fuzz.Gen.generate
            (Pmtest_fuzz.Gen.default_cfg Model.X86)
            (Pmtest_util.Rng.create i)
        in
        p.Pmtest_fuzz.Gen.events)
  in
  let boxed =
    let rt = Runtime.create ~workers:0 () in
    List.iter (Runtime.send_trace rt) sections;
    Format.asprintf "%a" Report.pp (Runtime.shutdown rt)
  in
  let packed workers =
    let rt = Runtime.create ~workers () in
    List.iter (fun evs -> Runtime.send_packed rt (Packed.of_events evs)) sections;
    Format.asprintf "%a" Report.pp (Runtime.shutdown rt)
  in
  Alcotest.(check string) "packed workers=0 matches boxed" boxed (packed 0);
  Alcotest.(check string) "packed workers=4 matches boxed" boxed (packed 4)

let test_mixed_sections_aggregate () =
  (* Boxed and packed sections interleaved in one runtime keep send
     order in the aggregate. *)
  let rt = Runtime.create ~workers:2 () in
  for _ = 1 to 25 do
    Runtime.send_trace rt clean_section;
    Runtime.send_packed rt (Packed.of_events buggy_section)
  done;
  let r = Runtime.shutdown rt in
  Alcotest.(check int) "25 failures" 25 (List.length (Report.fails r));
  Alcotest.(check int) "all entries counted" (25 * 7) r.Report.entries

let test_send_packed_cb_order_and_merge () =
  (* Callback reports, merged as they arrive, must equal the aggregate a
     dedicated synchronous runtime produces over the same sections — the
     property pmtestd's per-session aggregation is built on. *)
  let sections =
    List.init 30 (fun i ->
        let p =
          Pmtest_fuzz.Gen.generate
            (Pmtest_fuzz.Gen.default_cfg Model.X86)
            (Pmtest_util.Rng.create (1000 + i))
        in
        p.Pmtest_fuzz.Gen.events)
  in
  let dedicated =
    let rt = Runtime.create ~workers:0 ~model:Model.X86 () in
    List.iter (Runtime.send_trace rt) sections;
    Format.asprintf "%a" Report.pp (Runtime.shutdown rt)
  in
  List.iter
    (fun workers ->
      let rt = Runtime.create ~workers () in
      let agg = ref Report.empty in
      List.iter
        (fun evs ->
          Runtime.send_packed_cb ~model:Model.X86 rt (Packed.of_events evs) (fun r ->
              agg := Report.merge !agg r))
        sections;
      ignore (Runtime.shutdown rt);
      Alcotest.(check string)
        (Printf.sprintf "callback merge equals dedicated run, %d worker(s)" workers)
        dedicated
        (Format.asprintf "%a" Report.pp !agg))
    [ 0; 2 ]

let test_send_packed_cb_isolated_from_aggregate () =
  (* Sections checked through the callback path must not leak into the
     runtime's own aggregate. *)
  let rt = Runtime.create ~workers:1 () in
  let hits = ref 0 in
  Runtime.send_packed_cb rt (Packed.of_events buggy_section) (fun r ->
      incr hits;
      Alcotest.(check int) "callback sees the failure" 1 (List.length (Report.fails r)));
  Runtime.send_trace rt clean_section;
  let r = Runtime.shutdown rt in
  Alcotest.(check int) "callback fired once" 1 !hits;
  Alcotest.(check int) "aggregate only holds the boxed section" 4 r.Report.entries;
  Alcotest.(check bool) "aggregate clean" true (Report.is_clean r)

let test_send_packed_cb_per_model () =
  (* Two interleaved "sessions" on one pool, each pinned to its own
     model via the per-dispatch override. *)
  let section = [| w 0x100 8; is_persist 0x100 8 |] in
  let rt = Runtime.create ~workers:2 () in
  let x86 = ref Report.empty and eadr = ref Report.empty in
  for _ = 1 to 10 do
    Runtime.send_packed_cb ~model:Model.X86 rt (Packed.of_events section) (fun r ->
        x86 := Report.merge !x86 r);
    Runtime.send_packed_cb ~model:Model.Eadr rt (Packed.of_events section) (fun r ->
        eadr := Report.merge !eadr r)
  done;
  ignore (Runtime.shutdown rt);
  (* An unflushed store: a bug under x86, durable by construction under
     eADR (the persistence domain includes the caches). *)
  Alcotest.(check int) "x86 session sees 10 failures" 10 (List.length (Report.fails !x86));
  Alcotest.(check bool) "eadr session is clean" true (Report.is_clean !eadr)

(* --- Session API ---------------------------------------------------------- *)

let test_session_basic () =
  let t = Pmtest.init ~workers:1 () in
  let sink = Pmtest.sink t in
  Sink.write sink ~addr:0x100 ~size:8 ();
  Sink.clwb sink ~addr:0x100 ~size:8 ();
  Sink.sfence sink ();
  Pmtest.is_persist t ~addr:0x100 ~size:8;
  Pmtest.send_trace t;
  let r = Pmtest.finish t in
  Alcotest.(check bool) "clean" true (Report.is_clean r);
  Alcotest.(check int) "ops" 3 r.Report.ops

let test_session_detects_bug () =
  let t = Pmtest.init ~workers:2 () in
  let sink = Pmtest.sink t in
  Sink.write sink ~addr:0x100 ~size:8 ();
  Pmtest.is_persist t ~addr:0x100 ~size:8;
  let r = Pmtest.finish t in
  Alcotest.(check int) "one fail" 1 (List.length (Report.fails r))

let test_session_tracking_toggle () =
  let t = Pmtest.init ~workers:0 () in
  let sink = Pmtest.sink t in
  Pmtest.stop t;
  Sink.write sink ~addr:0x100 ~size:8 ();
  Pmtest.start t;
  Alcotest.(check int) "dropped while stopped" 0 (Pmtest.section_length t);
  Sink.write sink ~addr:0x200 ~size:8 ();
  Alcotest.(check int) "recorded when started" 1 (Pmtest.section_length t);
  ignore (Pmtest.finish t)

let test_session_threads () =
  let t = Pmtest.init ~workers:2 () in
  Pmtest.thread_init t ~thread:1;
  Pmtest.thread_init t ~thread:2;
  let emit thread =
    let sink = Pmtest.sink ~thread t in
    Sink.write sink ~addr:(0x100 * (thread + 1)) ~size:8 ();
    Pmtest.is_persist ~thread t ~addr:(0x100 * (thread + 1)) ~size:8;
    Pmtest.send_trace ~thread t
  in
  let d1 = Domain.spawn (fun () -> emit 1) in
  let d2 = Domain.spawn (fun () -> emit 2) in
  Domain.join d1;
  Domain.join d2;
  let r = Pmtest.finish t in
  Alcotest.(check int) "both sections failed" 2 (List.length (Report.fails r))

let test_session_vars () =
  let t = Pmtest.init ~workers:0 () in
  Pmtest.reg_var t "backup" ~addr:0x40 ~size:16;
  Alcotest.(check (option (pair int int))) "registered" (Some (0x40, 16)) (Pmtest.get_var t "backup");
  let sink = Pmtest.sink t in
  Sink.write sink ~addr:0x40 ~size:16 ();
  Pmtest.is_persist_var t "backup";
  Pmtest.unreg_var t "backup";
  Alcotest.(check (option (pair int int))) "unregistered" None (Pmtest.get_var t "backup");
  let r = Pmtest.finish t in
  Alcotest.(check int) "checker ran" 1 (List.length (Report.fails r))

let test_session_get_result_drains () =
  let t = Pmtest.init ~workers:4 () in
  let sink = Pmtest.sink t in
  for i = 1 to 20 do
    Sink.write sink ~addr:(i * 64) ~size:8 ();
    Pmtest.is_persist t ~addr:(i * 64) ~size:8;
    Pmtest.send_trace t
  done;
  let r = Pmtest.get_result t in
  Alcotest.(check int) "all 20 checked" 20 (List.length (Report.fails r));
  ignore (Pmtest.finish t)

let () =
  Alcotest.run "runtime"
    [
      ( "runtime",
        [
          Alcotest.test_case "synchronous mode" `Quick test_sync_runtime;
          Alcotest.test_case "worker pool aggregates" `Quick test_worker_pool_aggregates;
          Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_idempotent;
          Alcotest.test_case "trace sections are independent" `Quick test_traces_are_independent;
          Alcotest.test_case "parallel run is deterministic" `Quick test_parallel_deterministic;
          Alcotest.test_case "packed sections are deterministic" `Quick
            test_packed_sections_deterministic;
          Alcotest.test_case "boxed and packed sections mix" `Quick test_mixed_sections_aggregate;
          Alcotest.test_case "send_packed_cb merge equals dedicated run" `Quick
            test_send_packed_cb_order_and_merge;
          Alcotest.test_case "send_packed_cb stays out of the aggregate" `Quick
            test_send_packed_cb_isolated_from_aggregate;
          Alcotest.test_case "send_packed_cb per-dispatch model" `Quick
            test_send_packed_cb_per_model;
        ] );
      ( "session",
        [
          Alcotest.test_case "init/emit/finish round trip" `Quick test_session_basic;
          Alcotest.test_case "detects a missing barrier" `Quick test_session_detects_bug;
          Alcotest.test_case "start/stop tracking" `Quick test_session_tracking_toggle;
          Alcotest.test_case "per-thread builders" `Quick test_session_threads;
          Alcotest.test_case "variable registry" `Quick test_session_vars;
          Alcotest.test_case "get_result blocks until drained" `Quick
            test_session_get_result_drains;
        ] );
    ]
