(* Crash-state exploration for the PM file systems: golden corrupted
   images for the fsck layer, proof that the enumerator actually catches
   the seeded crash-consistency faults (and that a deliberately broken
   enumerator misses them), determinism, and replay of the checked-in
   crashfs reproducer corpus. *)

module Crashfs = Pmtest_crashfs.Crashfs
module Workload = Pmtest_crashfs.Workload
module Fsck = Pmtest_crashfs.Fsck
module Fs = Pmtest_pmfs.Fs
module Nova = Pmtest_nova.Nova
module Machine = Pmtest_pmem.Machine
module Access = Pmtest_pmem.Access
module Sink = Pmtest_trace.Sink

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

let contains s frag =
  let n = String.length s and m = String.length frag in
  let rec go i = i + m <= n && (String.sub s i m = frag || go (i + 1)) in
  m = 0 || go 0

let expect_err frag = function
  | Ok () -> Alcotest.failf "expected an error mentioning %S, got Ok" frag
  | Error msg ->
    if not (contains msg frag) then
      Alcotest.failf "error %S does not mention %S" msg frag

let fault config name =
  match Crashfs.with_fault config name with
  | Ok c -> c
  | Error e -> Alcotest.fail e

(* --- Golden corrupted images -------------------------------------------------- *)

(* A healthy little PMFS instance the corruption tests hand-break.
   PMFS keeps no volatile index, so the checks read the corruption
   straight through the live machine. *)
let pmfs_victim () =
  let fs = Fs.mkfs ~inodes:8 ~blocks:32 ~sink:Sink.null () in
  let a = ok (Fs.create fs "a") in
  ok (Fs.write fs ~ino:a ~off:0 (String.make 700 'x'));
  let b = ok (Fs.create fs "b") in
  let m = Fs.machine fs in
  let itable_off = Access.get_int m 40 in
  (fs, m, a, b, fun ino -> itable_off + (ino * 128))

let test_golden_clean () =
  let fs, _, _, _, _ = pmfs_victim () in
  ok (Fsck.pmfs fs)

let test_golden_invalid_inode_type () =
  let fs, m, a, _, inode_off = pmfs_victim () in
  Access.set_int m (inode_off a) 7;
  expect_err "invalid type" (Fsck.pmfs fs)

let test_golden_stray_directory_inode () =
  let fs, m, _, _, inode_off = pmfs_victim () in
  (* A free slot turned into a directory inode: nothing references it,
     the base checker is happy, the fsck layer is not. *)
  Access.set_int m (inode_off 5) 2;
  expect_err "is a directory" (Fsck.pmfs fs)

let test_golden_orphan_inode () =
  let fs, m, _, _, inode_off = pmfs_victim () in
  Access.set_int m (inode_off 5) 1;
  expect_err "orphan inode 5" (Fsck.pmfs fs)

let test_golden_dangling_dirent () =
  let fs, m, _, b, inode_off = pmfs_victim () in
  (* Free the inode under a live dirent. *)
  Access.set_int m (inode_off b) 0;
  expect_err "references non-file inode" (Fsck.pmfs fs)

let test_golden_torn_journal () =
  let _, m, _, _, _ = pmfs_victim () in
  let journal_off = Access.get_int m 32 in
  (* A persisted count covering an all-zero entry: addr 0, size 0. *)
  Access.set_int m journal_off 1;
  Access.set_int m (journal_off + 64) 0;
  Access.set_int m (journal_off + 72) 0;
  expect_err "journal: torn entry 0" (Fsck.pmfs_journal m);
  (* A count past the journal's capacity. *)
  Access.set_int m journal_off 100_000;
  expect_err "outside" (Fsck.pmfs_journal m)

let test_golden_block_beyond_size () =
  let fs, m, a, _, inode_off = pmfs_victim () in
  (* "a" holds 700 bytes = blocks 0 and 1; shrink the size under the
     allocation without freeing slot 1. *)
  Access.set_int m (inode_off a + 8) 100;
  expect_err "beyond file size" (Fsck.pmfs fs)

let test_golden_nova_shared_page () =
  let fs = Nova.mkfs ~track_versions:true ~sink:Sink.null () in
  let a = ok (Nova.create fs "a") in
  let b = ok (Nova.create fs "b") in
  ok (Nova.write fs ~ino:a ~pgoff:0 "first");
  ok (Nova.write fs ~ino:b ~pgoff:0 "second");
  let block_of ino =
    match Nova.page_map fs ~ino with
    | [ (0, blk) ] -> blk
    | other -> Alcotest.failf "expected one page, got %d" (List.length other)
  in
  let m = Nova.machine fs in
  (* Patch b's committed write entry to claim a's data page. The write
     entry is the first (and only) entry in b's log. *)
  let log_off = Access.get_int m 24 in
  let entry = log_off + (b * 64 * 64) in
  Alcotest.(check int) "found b's write entry" 1 (Access.get_int m entry);
  Access.set_int m (entry + 16) (block_of a);
  Machine.persist_all m;
  let fs2 = Nova.mount ~machine:(Machine.of_image (Machine.media_image m)) ~sink:Sink.null in
  expect_err "shared by inodes" (Fsck.nova fs2)

(* --- The enumerator catches the seeded faults --------------------------------- *)

let pmfs_bug_ops = [| Workload.Create "b" |]
let nova_bug_ops = [| Workload.Create "a"; Workload.Create "b" |]

let test_enumerator_catches_pmfs_fault () =
  let config = fault (Crashfs.default_config Crashfs.Pmfs) "skip-journal-flush" in
  let st = Crashfs.run_ops config ~seed:1 pmfs_bug_ops in
  Alcotest.(check bool) "skip-journal-flush caught" true (st.Crashfs.failures <> [])

let test_enumerator_catches_nova_fault () =
  let config = fault (Crashfs.default_config Crashfs.Nova) "skip-tail-persist" in
  let st = Crashfs.run_ops config ~seed:1 nova_bug_ops in
  Alcotest.(check bool) "skip-tail-persist caught" true (st.Crashfs.failures <> [])

let test_enumerator_catches_valid_before_init () =
  let config = fault (Crashfs.default_config Crashfs.Nova) "valid-before-init" in
  let st = Crashfs.run_ops config ~seed:1 [| Workload.Create "b" |] in
  Alcotest.(check bool) "valid-before-init caught" true (st.Crashfs.failures <> []);
  (* The clean twin: the fixed store order survives the same workload. *)
  let clean = Crashfs.run_ops (Crashfs.default_config Crashfs.Nova) ~seed:1 [| Workload.Create "b" |] in
  Alcotest.(check (list Alcotest.reject)) "clean twin survives" [] clean.Crashfs.failures

let test_broken_enumerator_misses_the_bug () =
  (* Catch proof: skip the first failing boundary (and everything after
     it) and the known bug escapes — the boundary walk is load-bearing,
     not decorative. *)
  let config = fault (Crashfs.default_config Crashfs.Pmfs) "skip-journal-flush" in
  let st = Crashfs.run_ops config ~seed:1 pmfs_bug_ops in
  let k =
    match st.Crashfs.failures with
    | f :: _ -> f.Crashfs.boundary
    | [] -> Alcotest.fail "the fault was not caught in the first place"
  in
  let broken = { config with Crashfs.boundary_filter = Some (fun i -> i < k) } in
  let st' = Crashfs.run_ops broken ~seed:1 pmfs_bug_ops in
  Alcotest.(check (list Alcotest.reject))
    "the broken enumerator misses the bug" [] st'.Crashfs.failures

(* --- Clean campaigns, models, determinism ------------------------------------- *)

let test_clean_campaigns_survive () =
  List.iter
    (fun fs ->
      let config = Crashfs.default_config fs in
      let c = Crashfs.run_campaign config ~count:4 ~seed:100 () in
      if c.Crashfs.findings <> [] then
        Alcotest.failf "clean %s campaign found %d failure(s): %s" (Crashfs.fs_kind_name fs)
          (List.length c.Crashfs.findings)
          (match c.Crashfs.findings with
          | f :: _ -> f.Crashfs.f_failure.Crashfs.message
          | [] -> "");
      let s = c.Crashfs.total in
      Alcotest.(check bool) "states were pruned" true (s.Crashfs.avoided > 0.);
      Alcotest.(check bool)
        "pruned ratio is a proper fraction" true
        (Crashfs.pruned_ratio s > 0. && Crashfs.pruned_ratio s < 1.);
      Alcotest.(check bool) "recoveries happened" true (s.Crashfs.recoveries > 0))
    [ Crashfs.Pmfs; Crashfs.Nova ]

let test_eadr_model_runs_clean () =
  let config = { (Crashfs.default_config Crashfs.Pmfs) with Crashfs.model = Pmtest_model.Model.Eadr } in
  let ops = Crashfs.gen_ops config ~seed:7 in
  let st = Crashfs.run_ops config ~seed:7 ops in
  Alcotest.(check (list Alcotest.reject)) "eadr clean" [] st.Crashfs.failures;
  (* eADR's persistence domain includes the caches: one image per
     boundary, so exploration degenerates to the fence walk. *)
  Alcotest.(check int) "one image per explored boundary" st.Crashfs.explored st.Crashfs.images

let test_cxl_model_is_rejected () =
  let config = { (Crashfs.default_config Crashfs.Pmfs) with Crashfs.model = Pmtest_model.Model.Cxl } in
  match Crashfs.run_ops config ~seed:0 [| Workload.Readdir |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Cxl config must be rejected"

let determinism_prop =
  QCheck2.Test.make ~name:"same seed, same exploration (both file systems)" ~count:12
    QCheck2.Gen.(pair (int_bound 10_000) bool)
    (fun (seed, pick_nova) ->
      let fs = if pick_nova then Crashfs.Nova else Crashfs.Pmfs in
      let config = { (Crashfs.default_config fs) with Crashfs.max_ops = 6 } in
      let ops = Crashfs.gen_ops config ~seed in
      let ops' = Crashfs.gen_ops config ~seed in
      let st = Crashfs.run_ops config ~seed ops in
      let st' = Crashfs.run_ops config ~seed ops' in
      ops = ops' && st = st')

(* --- Reproducer corpus --------------------------------------------------------- *)

let corpus_dir () =
  (* dune runs tests from _build/default/test; the corpus is a sibling. *)
  if Sys.file_exists "../fuzz/corpus/crashfs" then "../fuzz/corpus/crashfs"
  else "fuzz/corpus/crashfs"

let test_corpus_replays () =
  match Crashfs.Repro.load_dir (corpus_dir ()) with
  | Error e -> Alcotest.fail e
  | Ok cases ->
    Alcotest.(check bool) "at least two reproducers" true (List.length cases >= 2);
    Alcotest.(check bool)
      "both outcomes are represented" true
      (List.exists (fun c -> c.Crashfs.Repro.expect_failure) cases
      && List.exists (fun c -> not c.Crashfs.Repro.expect_failure) cases);
    List.iter
      (fun c ->
        match Crashfs.Repro.replay c with
        | Ok _ -> ()
        | Error e -> Alcotest.fail e)
      cases

let test_repro_round_trip () =
  let case =
    {
      Crashfs.Repro.name = "round-trip";
      fs = Crashfs.Pmfs;
      model = Pmtest_model.Model.Hops;
      seed = 1234;
      fault = Some "skip-commit-fence";
      expect_failure = true;
      ops =
        [|
          Workload.Create "a";
          Workload.Write { name = "a"; off = 3; len = 17; fill = 'q' };
          Workload.Fsync "a";
          Workload.Unlink "a";
          Workload.Readdir;
        |];
    }
  in
  match Crashfs.Repro.of_text ~name:"round-trip" (Crashfs.Repro.to_text case) with
  | Error e -> Alcotest.fail e
  | Ok case' -> Alcotest.(check bool) "case round-trips" true (case = case')

let test_repro_rejects_garbage () =
  (match Crashfs.Repro.of_text ~name:"x" "not a case\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing header must be rejected");
  match
    Crashfs.Repro.of_text ~name:"x"
      "# pmtest-crashfs-case v1\n# fs: pmfs\n# check: fails\n# fault: made-up\nc\ta\n"
  with
  | Error e -> Alcotest.(check bool) "names the bad fault" true (contains e "made-up")
  | Ok _ -> Alcotest.fail "unknown fault must be rejected"

let test_op_serialization_round_trips () =
  List.iter
    (fun op ->
      match Workload.op_of_string (Workload.op_to_string op) with
      | Ok op' -> Alcotest.(check bool) "op round-trips" true (op = op')
      | Error e -> Alcotest.fail e)
    [
      Workload.Create "f";
      Workload.Write { name = "g"; off = 511; len = 600; fill = 'z' };
      Workload.Unlink "h";
      Workload.Fsync "i";
      Workload.Readdir;
    ]

(* --- Shrinking ----------------------------------------------------------------- *)

let test_shrink_is_minimal_and_still_fails () =
  let config = fault (Crashfs.default_config Crashfs.Pmfs) "skip-journal-flush" in
  let noisy =
    Array.append
      [| Workload.Readdir; Workload.Create "a"; Workload.Fsync "a" |]
      (Array.append pmfs_bug_ops [| Workload.Readdir |])
  in
  let st = Crashfs.run_ops config ~seed:1 noisy in
  Alcotest.(check bool) "noisy sequence fails" true (st.Crashfs.failures <> []);
  let shrunk = Crashfs.shrink config ~seed:1 noisy in
  Alcotest.(check bool) "shrunk is shorter" true (Array.length shrunk < Array.length noisy);
  let st' = Crashfs.run_ops config ~seed:1 shrunk in
  Alcotest.(check bool) "shrunk still fails" true (st'.Crashfs.failures <> [])

let () =
  Alcotest.run "crashfs"
    [
      ( "golden-images",
        [
          Alcotest.test_case "healthy image passes" `Quick test_golden_clean;
          Alcotest.test_case "invalid inode type" `Quick test_golden_invalid_inode_type;
          Alcotest.test_case "stray directory inode" `Quick test_golden_stray_directory_inode;
          Alcotest.test_case "orphan inode" `Quick test_golden_orphan_inode;
          Alcotest.test_case "dangling dirent" `Quick test_golden_dangling_dirent;
          Alcotest.test_case "torn journal" `Quick test_golden_torn_journal;
          Alcotest.test_case "block beyond file size" `Quick test_golden_block_beyond_size;
          Alcotest.test_case "nova shared data page" `Quick test_golden_nova_shared_page;
        ] );
      ( "enumerator",
        [
          Alcotest.test_case "catches skip-journal-flush (pmfs)" `Quick
            test_enumerator_catches_pmfs_fault;
          Alcotest.test_case "catches skip-tail-persist (nova)" `Quick
            test_enumerator_catches_nova_fault;
          Alcotest.test_case "catches valid-before-init (nova)" `Quick
            test_enumerator_catches_valid_before_init;
          Alcotest.test_case "broken enumerator misses the bug" `Quick
            test_broken_enumerator_misses_the_bug;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "clean campaigns survive" `Slow test_clean_campaigns_survive;
          Alcotest.test_case "eadr runs clean" `Quick test_eadr_model_runs_clean;
          Alcotest.test_case "cxl is rejected" `Quick test_cxl_model_is_rejected;
          QCheck_alcotest.to_alcotest determinism_prop;
        ] );
      ( "reproducers",
        [
          Alcotest.test_case "checked-in corpus replays" `Slow test_corpus_replays;
          Alcotest.test_case "case round-trips" `Quick test_repro_round_trip;
          Alcotest.test_case "garbage is rejected" `Quick test_repro_rejects_garbage;
          Alcotest.test_case "op serialization round-trips" `Quick
            test_op_serialization_round_trips;
          Alcotest.test_case "shrink keeps the failure" `Quick
            test_shrink_is_minimal_and_still_fails;
        ] );
    ]
