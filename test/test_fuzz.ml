(* The differential fuzzing subsystem: generator invariants, cross-checker
   campaigns, counterexample shrinking, mutation coverage over the bug
   catalog, and the checked-in regression corpus. *)

open Pmtest_model
open Pmtest_trace
module Rng = Pmtest_util.Rng
module Gen = Pmtest_fuzz.Gen
module Oracle = Pmtest_fuzz.Oracle
module Shrink = Pmtest_fuzz.Shrink
module Cross = Pmtest_fuzz.Cross
module Campaign = Pmtest_fuzz.Campaign
module Repro = Pmtest_fuzz.Repro
module Mutate = Pmtest_fuzz.Mutate

let models = [ Model.X86; Model.Hops; Model.Eadr ]

(* --- Generator ------------------------------------------------------------- *)

let test_gen_deterministic () =
  List.iter
    (fun model ->
      let gen () = Gen.generate (Gen.default_cfg model) (Rng.create 42) in
      Alcotest.(check string)
        (Model.kind_name model ^ " same seed, same program")
        (Repro.serial_text (gen ()))
        (Repro.serial_text (gen ()));
      let ps = Campaign.program_for_seed (Campaign.default_cfg model) 7 in
      Alcotest.(check string)
        (Model.kind_name model ^ " campaign seed is reproducible")
        (Repro.serial_text ps)
        (Repro.serial_text (Campaign.program_for_seed (Campaign.default_cfg model) 7)))
    models

let test_gen_valid_ops () =
  List.iter
    (fun model ->
      for seed = 0 to 199 do
        let p = Gen.generate (Gen.default_cfg model) (Rng.create seed) in
        Array.iter
          (fun (e : Event.t) ->
            match e.Event.kind with
            | Event.Op op ->
              if not (Model.valid_op model op) then
                Alcotest.failf "%s seed %d: invalid op in generated program"
                  (Model.kind_name model) seed
            | _ -> ())
          p.Gen.events
      done)
    models

let test_oracle_programs_eligible () =
  List.iter
    (fun model ->
      for seed = 0 to 199 do
        let p = Gen.oracle_program ~with_checkers:true (Gen.oracle_cfg model) (Rng.create seed) in
        if not (Gen.oracle_eligible p) then
          Alcotest.failf "%s seed %d: oracle-shaped program not oracle-eligible"
            (Model.kind_name model) seed
      done)
    models

(* --- Campaign -------------------------------------------------------------- *)

let test_campaign_no_disagreements () =
  List.iter
    (fun model ->
      let cfg = { (Campaign.default_cfg model) with Campaign.count = 150 } in
      let stats = Campaign.run cfg in
      List.iter
        (fun (f : Campaign.finding) ->
          Alcotest.failf "%s seed %d, %s: %s" (Model.kind_name model) f.Campaign.found_seed
            (Cross.pair_name f.Campaign.pair) f.Campaign.detail)
        stats.Campaign.findings;
      (* The contracts must actually apply, not skip their way to green. *)
      List.iter
        (fun (pair, n) ->
          match pair with
          | Cross.Engine_vs_naive | Cross.Engine_vs_lint | Cross.Engine_vs_packed
          | Cross.Engine_vs_serve | Cross.Engine_vs_repair ->
            Alcotest.(check bool)
              (Model.kind_name model ^ " " ^ Cross.pair_name pair ^ " applied everywhere")
              true (n = 150)
          | Cross.Engine_vs_oracle ->
            Alcotest.(check bool)
              (Model.kind_name model ^ " oracle applied to a real share")
              true (n > 20)
          | Cross.Engine_vs_pmemcheck | Cross.Engine_vs_crashtest -> ())
        stats.Campaign.applied)
    models

(* --- Shrinking ------------------------------------------------------------- *)

let w addr size = Event.make (Event.Op (Model.Write { addr; size }))

let count_writes evs =
  Array.fold_left
    (fun n (e : Event.t) ->
      match e.Event.kind with Event.Op (Model.Write _) -> n + 1 | _ -> n)
    0 evs

let test_shrink_reaches_minimum () =
  (* A monotone predicate with a known minimal size: "at least 3 writes
     survive". ddmin must strip everything else. *)
  let events =
    Array.init 24 (fun i ->
        if i mod 2 = 0 then w (i * 8) 8 else Event.make (Event.Op Model.Sfence))
  in
  let pred evs = count_writes evs >= 3 in
  let shrunk = Shrink.minimize ~pred events in
  Alcotest.(check bool) "predicate preserved" true (pred shrunk);
  Alcotest.(check int) "exactly the 3 required events remain" 3 (Array.length shrunk)

let test_shrink_simplifies_operands () =
  (* Shrinking must also shrink addresses/sizes, not just drop events. *)
  let events = [| w 0x1f00 64 |] in
  let pred evs = count_writes evs >= 1 in
  let shrunk = Shrink.minimize ~pred events in
  Alcotest.(check int) "single event" 1 (Array.length shrunk);
  match shrunk.(0).Event.kind with
  | Event.Op (Model.Write { addr; size }) ->
    Alcotest.(check int) "address canonicalized" 0 addr;
    Alcotest.(check bool) "size shrunk below original" true (size < 64)
  | _ -> Alcotest.fail "not a write"

let test_shrink_rejects_failing_input () =
  Alcotest.check_raises "invalid_arg on a passing input"
    (Invalid_argument "Shrink.minimize: predicate does not hold on the input") (fun () ->
      ignore (Shrink.minimize ~pred:(fun _ -> false) [| w 0 8 |]))

(* --- Mutation mode ---------------------------------------------------------- *)

let test_mutation_all_operators_seed () =
  let seeded = Mutate.seed_catalog () in
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Mutate.kind_name kind ^ " seeds at least one mutant")
        true
        (List.exists (fun (s : Mutate.seeded) -> s.Mutate.mutation = kind) seeded))
    Mutate.all_kinds

let test_mutation_all_caught_and_shrunk () =
  let seeded = Mutate.seed_catalog () in
  (* One representative per operator keeps runtest fast; the nightly fuzz
     job checks the full catalog. *)
  List.iter
    (fun kind ->
      match List.find_opt (fun (s : Mutate.seeded) -> s.Mutate.mutation = kind) seeded with
      | None -> Alcotest.failf "no mutant for %s" (Mutate.kind_name kind)
      | Some s ->
        let o = Mutate.check s in
        List.iter
          (fun (c : Mutate.claim) ->
            Alcotest.failf "%s on %s: %s missed %s" (Mutate.kind_name kind) s.Mutate.case_id
              (Repro.tool_name c.Mutate.tool)
              (Pmtest_core.Report.kind_string c.Mutate.diag))
          o.Mutate.missed;
        Alcotest.(check bool)
          (Mutate.kind_name kind ^ " shrunk to at most 12 events")
          true
          (Array.length o.Mutate.shrunk <= 12))
    Mutate.all_kinds

(* --- Corpus ----------------------------------------------------------------- *)

let corpus_dir () =
  (* dune runs tests from _build/default/test; the corpus is a sibling. *)
  if Sys.file_exists "../fuzz/corpus" then "../fuzz/corpus" else "fuzz/corpus"

let test_corpus_replays () =
  match Repro.load_dir (corpus_dir ()) with
  | Error e -> Alcotest.fail e
  | Ok cases ->
    Alcotest.(check bool) "corpus is non-empty" true (List.length cases >= 5);
    List.iter
      (fun (c : Repro.case) ->
        match Repro.replay c with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: %s" c.Repro.name e)
      cases

let test_corpus_round_trip () =
  let p = Gen.generate (Gen.default_cfg Model.X86) (Rng.create 7) in
  let case =
    {
      Repro.name = "tmp-round-trip";
      program = p;
      checks = [ Repro.Agree Cross.Engine_vs_naive; Repro.Agree Cross.Engine_vs_lint ];
    }
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "pmtest-fuzz-corpus-test" in
  let path = Repro.save ~dir case in
  (match Repro.load_file path with
  | Error e -> Alcotest.fail e
  | Ok c ->
    Alcotest.(check string) "name survives" case.Repro.name c.Repro.name;
    Alcotest.(check string) "trace survives" (Repro.serial_text p)
      (Repro.serial_text c.Repro.program);
    Alcotest.(check int) "pm_size survives" p.Gen.pm_size c.Repro.program.Gen.pm_size;
    Alcotest.(check bool) "checks survive" true (c.Repro.checks = case.Repro.checks);
    (match Repro.replay c with Ok () -> () | Error e -> Alcotest.fail e));
  Sys.remove path

let test_corpus_save_dedupes_by_digest () =
  (* Saving the same program twice — even under a different case name —
     must return the existing reproducer instead of minting a sibling:
     corpus identity is the (model, trace) digest, not the filename. *)
  let p = Gen.generate (Gen.default_cfg Model.X86) (Rng.create 11) in
  let case name = { Repro.name; program = p; checks = [ Repro.Agree Cross.Engine_vs_naive ] } in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pmtest-fuzz-dedupe-test-%d" (Unix.getpid ()))
  in
  let path1 = Repro.save ~dir (case "tmp-dedupe-original") in
  let path2 = Repro.save ~dir (case "tmp-dedupe-duplicate") in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path1 with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      Alcotest.(check string) "duplicate save returns the existing case" path1 path2;
      let pmts = Array.to_list (Sys.readdir dir) in
      Alcotest.(check int) "one reproducer on disk" 1 (List.length pmts);
      (* A genuinely different program still gets its own file. *)
      let q = Gen.generate (Gen.default_cfg Model.X86) (Rng.create 12) in
      let path3 = Repro.save ~dir { (case "tmp-dedupe-fresh") with Repro.program = q } in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path3 with Sys_error _ -> ())
        (fun () ->
          Alcotest.(check bool) "fresh trace saved separately" true (path3 <> path1)))

let test_snippet_mentions_engine () =
  let p = Gen.oracle_program ~with_checkers:true (Gen.oracle_cfg Model.Hops) (Rng.create 3) in
  let s = Repro.ocaml_snippet p in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "snippet runs the engine" true (contains "Engine.check");
  Alcotest.(check bool) "snippet pins the model" true (contains "Model.Hops")

let () =
  Alcotest.run "fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic by seed" `Quick test_gen_deterministic;
          Alcotest.test_case "ops valid for the model" `Quick test_gen_valid_ops;
          Alcotest.test_case "oracle-shaped programs eligible" `Quick
            test_oracle_programs_eligible;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "150 programs/model, all pairs agree" `Quick
            test_campaign_no_disagreements;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "reaches the known minimum" `Quick test_shrink_reaches_minimum;
          Alcotest.test_case "simplifies addresses and sizes" `Quick
            test_shrink_simplifies_operands;
          Alcotest.test_case "rejects non-failing input" `Quick test_shrink_rejects_failing_input;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "every operator seeds a mutant" `Quick
            test_mutation_all_operators_seed;
          Alcotest.test_case "every claim caught, reproducers small" `Quick
            test_mutation_all_caught_and_shrunk;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "checked-in cases replay" `Quick test_corpus_replays;
          Alcotest.test_case "save/load round trip" `Quick test_corpus_round_trip;
          Alcotest.test_case "save dedupes by trace digest" `Quick
            test_corpus_save_dedupes_by_digest;
          Alcotest.test_case "OCaml snippet is self-contained" `Quick
            test_snippet_mentions_engine;
        ] );
    ]
