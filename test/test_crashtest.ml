(* Crash-injection harness: correct programs survive every injected
   crash; programs with seeded crash-consistency bugs produce durable
   images their recovery cannot repair. Crashes are injected through the
   instrumentation sink, so the windows *inside* each transaction
   (update written but not flushed, log appended but not yet valid, ...)
   are exercised — exactly where the seeded bugs bite. *)

open Pmtest_pmdk
module Crashtest = Pmtest_crashtest.Crashtest
module Machine = Pmtest_pmem.Machine
module Region = Pmtest_mnemosyne.Region
module Pmap = Pmtest_mnemosyne.Pmap
module Fs = Pmtest_pmfs.Fs
module Sink = Pmtest_trace.Sink

let value_of i = Bytes.of_string (Printf.sprintf "v%d" i)

let fast_config =
  { Crashtest.default_config with Crashtest.samples_per_point = 8; exhaustive_limit = 48 }

(* A sink whose destination can be set after the consumer was created —
   lets the crash injector observe a machine the pool itself creates. *)
let forwarding_sink () =
  let target = ref Sink.null in
  ({ Sink.emit = (fun k l -> !target.Sink.emit k l) }, target)

(* Recovery for a pool-backed map: boot the image, roll back the journal,
   reopen the structure, check the structural invariant, and require every
   committed key to be present with its committed value. *)
let pmdk_recover ~reopen ~committed image =
  let booted = Machine.of_image image in
  let pool = Pool.of_machine ~machine:booted ~sink:Sink.null in
  let lookup, check = reopen pool in
  match check () with
  | Error e -> Error ("inconsistent after recovery: " ^ e)
  | Ok () -> (
    match
      List.find_opt
        (fun (key, v) ->
          match lookup ~key with Some got -> not (Bytes.equal got v) | None -> true)
        !committed
    with
    | Some (key, _) -> Error (Printf.sprintf "committed key %Ld lost or corrupted" key)
    | None -> Ok ())

let crashtest_pmdk ?fault ~make_map ~steps () =
  let committed = ref [] in
  let sink, target = forwarding_sink () in
  let pool = Pool.create ~track_versions:true ~size:(1 lsl 21) ~sink () in
  Pool.set_fault pool fault;
  let insert, reopen = make_map pool in
  let recover = pmdk_recover ~reopen ~committed in
  let live, crash_sink =
    Crashtest.attach ~config:fast_config ~machine:(Pool.machine pool) ~recover ()
  in
  target := crash_sink;
  for i = 0 to steps - 1 do
    let key = Int64.of_int i in
    insert ~key ~value:(value_of i);
    committed := (key, value_of i) :: !committed
  done;
  Crashtest.live_verdict live

let ctree_map ?bug pool =
  let m = Ctree_map.create pool in
  let root = Ctree_map.root_off m in
  ( (fun ~key ~value -> Ctree_map.insert ?bug m ~key ~value),
    fun pool ->
      let m = Ctree_map.open_ pool ~root in
      ((fun ~key -> Ctree_map.lookup m ~key), fun () -> Ctree_map.check_consistent m) )

let hashmap_map ?bug pool =
  let m = Hashmap_tx.create ~buckets:16 pool in
  let root = Hashmap_tx.root_off m in
  ( (fun ~key ~value -> Hashmap_tx.insert ?bug m ~key ~value),
    fun pool ->
      let m = Hashmap_tx.open_ pool ~root in
      ((fun ~key -> Hashmap_tx.lookup m ~key), fun () -> Hashmap_tx.check_consistent m) )

let test_ctree_survives () =
  let v = crashtest_pmdk ~make_map:ctree_map ~steps:10 () in
  if not (Crashtest.survived v) then
    Alcotest.failf "correct ctree failed crash testing: %a" Crashtest.pp_verdict v;
  Alcotest.(check bool) "mid-transaction windows were sampled" true
    (v.Crashtest.images_tested > 200)

let test_ctree_unlogged_root_breaks () =
  (* The unlogged root-slot update can persist ahead of the new nodes: a
     crash in that window leaves a dangling pointer recovery cannot
     repair, or loses a committed key after rollback. *)
  let v = crashtest_pmdk ~make_map:(ctree_map ~bug:Ctree_map.Skip_log_root) ~steps:10 () in
  Alcotest.(check bool)
    (Format.asprintf "expected a violation, got %a" Crashtest.pp_verdict v)
    false (Crashtest.survived v)

let test_hashmap_survives () =
  let v = crashtest_pmdk ~make_map:hashmap_map ~steps:10 () in
  if not (Crashtest.survived v) then
    Alcotest.failf "correct hashmap failed crash testing: %a" Crashtest.pp_verdict v

let test_hashmap_commit_fault_loses_data () =
  (* Commit without writeback: committed data may never reach the media,
     so some crash image is missing a committed key. *)
  let v = crashtest_pmdk ~fault:Pool.Skip_commit_writeback ~make_map:hashmap_map ~steps:8 () in
  Alcotest.(check bool)
    (Format.asprintf "expected lost data, got %a" Crashtest.pp_verdict v)
    false (Crashtest.survived v)

let test_hashmap_unlogged_bucket_breaks () =
  let v = crashtest_pmdk ~make_map:(hashmap_map ~bug:Hashmap_tx.Skip_log_bucket) ~steps:8 () in
  Alcotest.(check bool)
    (Format.asprintf "expected a violation, got %a" Crashtest.pp_verdict v)
    false (Crashtest.survived v)

(* --- Mnemosyne pmap ------------------------------------------------------------ *)

let crashtest_pmap ?fault ~steps () =
  let committed = ref [] in
  let sink, target = forwarding_sink () in
  let region = Region.create ~track_versions:true ~size:(1 lsl 21) ~sink () in
  Region.set_fault region fault;
  let m = Pmap.create ~buckets:16 ~value_cap:16 region in
  let root = Pmap.root_off m in
  let recover image =
    let booted = Machine.of_image image in
    let region = Region.of_machine ~machine:booted ~sink:Sink.null in
    let m = Pmap.open_ region ~root in
    match Pmap.check_consistent m with
    | Error e -> Error ("inconsistent after recovery: " ^ e)
    | Ok () ->
      if
        List.for_all
          (fun (key, v) -> match Pmap.get m ~key with Some got -> got = v | None -> false)
          !committed
      then Ok ()
      else Error "committed key lost"
  in
  let live, crash_sink =
    Crashtest.attach ~config:fast_config ~machine:(Region.machine region) ~recover ()
  in
  target := crash_sink;
  for i = 0 to steps - 1 do
    let key = Int64.of_int i in
    let v = Printf.sprintf "s%d" i in
    Pmap.set m ~key ~value:v;
    committed := (key, v) :: !committed
  done;
  Crashtest.live_verdict live

let test_pmap_survives () =
  let v = crashtest_pmap ~steps:8 () in
  if not (Crashtest.survived v) then
    Alcotest.failf "correct pmap failed crash testing: %a" Crashtest.pp_verdict v

let test_pmap_unflushed_apply_breaks () =
  (* In-place updates never written back: a crash after log truncation
     loses committed data. *)
  let v = crashtest_pmap ~fault:Region.Skip_apply_writeback ~steps:8 () in
  Alcotest.(check bool)
    (Format.asprintf "expected lost data, got %a" Crashtest.pp_verdict v)
    false (Crashtest.survived v)

(* --- PMFS ------------------------------------------------------------------------ *)

let crashtest_pmfs ?fault ~steps () =
  let committed = ref [] in
  let sink, target = forwarding_sink () in
  let fs = Fs.mkfs ~track_versions:true ~inodes:32 ~blocks:64 ~sink () in
  Fs.set_fault fs fault;
  let recover image =
    let booted = Machine.of_image image in
    let fs = Fs.mount ~machine:booted ~sink:Sink.null in
    match Fs.check_consistent fs with
    | Error e -> Error ("fs inconsistent after recovery: " ^ e)
    | Ok () ->
      if
        List.for_all
          (fun (name, contents) ->
            match Fs.lookup fs name with
            | None -> false
            | Some ino -> (
              match Fs.read fs ~ino ~off:0 ~len:(String.length contents) with
              | Ok s -> s = contents
              | Error _ -> false))
          !committed
      then Ok ()
      else Error "committed file lost or corrupted"
  in
  let live, crash_sink =
    Crashtest.attach ~config:fast_config ~every:8 ~machine:(Fs.machine fs) ~recover ()
  in
  target := crash_sink;
  for i = 0 to steps - 1 do
    let name = Printf.sprintf "f%d" i in
    let contents = String.make (40 + (i * 13 mod 300)) (Char.chr (Char.code 'a' + (i mod 26))) in
    match Fs.create fs name with
    | Ok ino -> (
      match Fs.write fs ~ino ~off:0 contents with
      | Ok () -> committed := (name, contents) :: !committed
      | Error _ -> ())
    | Error _ -> ()
  done;
  Crashtest.live_verdict live

let test_pmfs_survives () =
  let v = crashtest_pmfs ~steps:6 () in
  if not (Crashtest.survived v) then
    Alcotest.failf "correct pmfs failed crash testing: %a" Crashtest.pp_verdict v

let test_pmfs_unjournaled_breaks () =
  let v = crashtest_pmfs ~fault:Fs.Skip_journal_flush ~steps:6 () in
  Alcotest.(check bool)
    (Format.asprintf "expected fs corruption, got %a" Crashtest.pp_verdict v)
    false (Crashtest.survived v)

(* --- CXL: global persistent flush programs --------------------------------------- *)

module Instr = Pmtest_pmem.Instr

(* A two-word commit under the CXL model: payload at 0, flag at 64 (its
   own cache line). The gpf is the only persist primitive — no per-line
   flushes — so correctness is entirely about where the gpf sits. The
   invariant: a durable flag implies a durable payload. *)
let cxl_commit ~buggy =
  let machine = Machine.create ~track_versions:true ~size:256 () in
  let sink, target = forwarding_sink () in
  let instr = Instr.make ~machine ~sink ~file:"cxl_commit.c" in
  let recover image =
    let flag = Bytes.get_int64_le image 64 and payload = Bytes.get_int64_le image 0 in
    if flag = 1L && payload <> 1L then Error "flag durable without its payload" else Ok ()
  in
  let live, crash_sink = Crashtest.attach ~config:fast_config ~every:1 ~machine ~recover () in
  target := crash_sink;
  Instr.store_i64 instr ~line:1 ~addr:0 1L;
  if not buggy then Instr.gpf instr ~line:2;
  Instr.store_i64 instr ~line:3 ~addr:64 1L;
  Instr.gpf instr ~line:4;
  Crashtest.live_verdict live

let test_cxl_correct_commit_survives () =
  let v = cxl_commit ~buggy:false in
  if not (Crashtest.survived v) then
    Alcotest.failf "correct gpf commit failed crash testing: %a" Crashtest.pp_verdict v

let test_cxl_missing_gpf_breaks () =
  (* Both stores race to the media under one trailing gpf: some admitted
     image persists the flag line but not the payload line. *)
  let v = cxl_commit ~buggy:true in
  Alcotest.(check bool)
    (Format.asprintf "expected a violation, got %a" Crashtest.pp_verdict v)
    false (Crashtest.survived v)

let test_cxl_visibility_is_not_durability () =
  (* The CXL model's split: after [payload; gpf; store flag] the flag is
     visible (volatile image) but not yet durable — some admitted crash
     image lacks it, while the gpf-covered payload is in every one. *)
  let machine = Machine.create ~track_versions:true ~size:256 () in
  let instr = Instr.make ~machine ~sink:Sink.null ~file:"cxl_commit.c" in
  Instr.store_i64 instr ~line:1 ~addr:0 1L;
  Instr.gpf instr ~line:2;
  Instr.store_i64 instr ~line:3 ~addr:64 1L;
  Alcotest.(check int64) "flag is visible" 1L
    (Bytes.get_int64_le (Machine.volatile_image machine) 64);
  let missing_flag = ref false in
  let all_have_payload = ref true in
  let exhaustive =
    Machine.iter_crash_states machine (fun img ->
        if Bytes.get_int64_le img 0 <> 1L then all_have_payload := false;
        if Bytes.get_int64_le img 64 <> 1L then missing_flag := true)
  in
  Alcotest.(check bool) "space was enumerated exhaustively" true exhaustive;
  Alcotest.(check bool) "gpf-covered payload is in every image" true !all_have_payload;
  Alcotest.(check bool) "visible flag is absent from some image" true !missing_flag

(* --- Agreement with PMTest ------------------------------------------------------- *)

let test_pmtest_verdict_predicts_crash_outcome () =
  (* Soundness direction: if PMTest's trace verdict is clean, crash
     injection must not find a violating image. (PMTest may be stricter
     than one sampling run — that direction is fine.) *)
  let module Report = Pmtest_core.Report in
  let module Pmtest = Pmtest_core.Pmtest in
  let pmtest_fails bug =
    let session = Pmtest.init ~workers:0 () in
    let pool = Pool.create ~size:(1 lsl 21) ~sink:(Pmtest.sink session) () in
    let m = Ctree_map.create pool in
    for i = 0 to 9 do
      Pool.tx_checker_start pool;
      Ctree_map.insert ?bug m ~key:(Int64.of_int i) ~value:(value_of i);
      Pool.tx_checker_end pool;
      Pmtest.send_trace session
    done;
    Report.has_fail (Pmtest.finish session)
  in
  List.iter
    (fun (name, bug) ->
      let fails = pmtest_fails bug in
      let crashes =
        not (Crashtest.survived (crashtest_pmdk ~make_map:(ctree_map ?bug) ~steps:10 ()))
      in
      if (not fails) && crashes then
        Alcotest.failf "%s: PMTest clean but crash testing found a violation" name)
    [ ("no bug", None); ("skip-log-root", Some Ctree_map.Skip_log_root) ]

let () =
  Alcotest.run "crashtest"
    [
      ( "pmdk",
        [
          Alcotest.test_case "correct ctree survives" `Quick test_ctree_survives;
          Alcotest.test_case "unlogged root breaks recovery" `Quick
            test_ctree_unlogged_root_breaks;
          Alcotest.test_case "correct hashmap survives" `Quick test_hashmap_survives;
          Alcotest.test_case "commit fault loses committed data" `Quick
            test_hashmap_commit_fault_loses_data;
          Alcotest.test_case "unlogged bucket breaks recovery" `Quick
            test_hashmap_unlogged_bucket_breaks;
        ] );
      ( "other-substrates",
        [
          Alcotest.test_case "correct pmap survives" `Quick test_pmap_survives;
          Alcotest.test_case "unflushed apply loses data" `Quick test_pmap_unflushed_apply_breaks;
          Alcotest.test_case "correct pmfs survives" `Quick test_pmfs_survives;
          Alcotest.test_case "unjournaled pmfs breaks" `Quick test_pmfs_unjournaled_breaks;
        ] );
      ( "cxl",
        [
          Alcotest.test_case "correct gpf commit survives" `Quick test_cxl_correct_commit_survives;
          Alcotest.test_case "missing gpf breaks recovery" `Quick test_cxl_missing_gpf_breaks;
          Alcotest.test_case "visibility is not durability" `Quick
            test_cxl_visibility_is_not_durability;
        ] );
      ( "pmtest-agreement",
        [
          Alcotest.test_case "clean verdicts imply crash survival" `Quick
            test_pmtest_verdict_predicts_crash_outcome;
        ] );
    ]
