(* The soundness/completeness oracle: PMTest's interval-based verdicts are
   validated against exhaustive crash-state enumeration (the Yat model) on
   randomly generated small traces.

   Setup: four cache lines; each write stores a fresh distinguishable
   pattern to one line. After every operation the set of reachable durable
   images is enumerated. For two lines A and B (on distinct cache lines):

   - ordering: "A's last write is guaranteed to persist before B's last
     write" is violated iff some reachable image (at any crash point)
     contains B's last value while A's last value is absent;
   - durability: "A has persisted" holds at the end iff every reachable
     final image contains A's last value.

   PMTest's isOrderedBefore / isPersist must agree exactly with the
   enumeration on both directions (sound and complete at cache-line
   granularity). *)

open Pmtest_model
open Pmtest_trace
module Machine = Pmtest_pmem.Machine
module Engine = Pmtest_core.Engine
module Report = Pmtest_core.Report
module Rng = Pmtest_util.Rng
module Gen = Pmtest_fuzz.Gen
module Oracle = Pmtest_fuzz.Oracle
module Cross = Pmtest_fuzz.Cross

let n_lines = 4
let line_addr i = i * Model.cache_line
let write_size = 8

type op = W of int | C of int | F

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 1 12)
      (oneof
         [
           (int_range 0 (n_lines - 1) >|= fun i -> W i);
           (int_range 0 (n_lines - 1) >|= fun i -> C i);
           return F;
         ]))

let pp_ops ops =
  String.concat ";"
    (List.map (function W i -> Printf.sprintf "w%d" i | C i -> Printf.sprintf "c%d" i | F -> "f") ops)

(* Replay the ops on a tracked machine, building the PMTest trace alongside
   and recording, after every op, the set of reachable durable images. *)
let execute ops =
  let machine = Machine.create ~track_versions:true ~size:(n_lines * Model.cache_line) () in
  let entries = ref [] in
  let last_val = Array.make n_lines None in
  let images = ref [] in
  let next = ref 0 in
  let snapshot () =
    ignore
      (Machine.iter_crash_states ~limit:100000 machine (fun img ->
           images := Bytes.copy img :: !images))
  in
  List.iter
    (fun op ->
      (match op with
      | W i ->
        incr next;
        let v = Char.chr (((!next - 1) mod 250) + 1) in
        Machine.store machine ~addr:(line_addr i) (Bytes.make write_size v);
        last_val.(i) <- Some v;
        entries := Event.make (Event.Op (Model.Write { addr = line_addr i; size = write_size })) :: !entries
      | C i ->
        Machine.clwb machine ~addr:(line_addr i) ~size:write_size;
        entries := Event.make (Event.Op (Model.Clwb { addr = line_addr i; size = write_size })) :: !entries
      | F ->
        Machine.sfence machine;
        entries := Event.make (Event.Op Model.Sfence) :: !entries);
      snapshot ())
    ops;
  let final_images = ref [] in
  ignore
    (Machine.iter_crash_states ~limit:100000 machine (fun img ->
         final_images := Bytes.copy img :: !final_images));
  (List.rev !entries, last_val, !images, !final_images)

let has_value img i v =
  let rec go k = k >= write_size || (Bytes.get img (line_addr i + k) = v && go (k + 1)) in
  go 0

let engine_verdict entries checker =
  (* Performance warnings (duplicate writebacks in the generated trace)
     are irrelevant here: the verdict is about the checker itself. *)
  let report = Engine.check (Array.of_list (entries @ [ Event.make (Event.Checker checker) ])) in
  Report.count Report.Not_ordered report = 0 && Report.count Report.Not_persisted report = 0

let prop_ordering_sound_and_complete =
  QCheck2.Test.make ~name:"isOrderedBefore agrees with exhaustive enumeration" ~count:300
    ~print:pp_ops gen_ops (fun ops ->
      let entries, last_val, images, _ = execute ops in
      let ok = ref true in
      for a = 0 to n_lines - 1 do
        for b = 0 to n_lines - 1 do
          if a <> b then begin
            match (last_val.(a), last_val.(b)) with
            | Some va, Some vb ->
              let engine_ordered =
                engine_verdict entries
                  (Event.Is_ordered_before
                     {
                       a_addr = line_addr a;
                       a_size = write_size;
                       b_addr = line_addr b;
                       b_size = write_size;
                     })
              in
              let bad_state_exists =
                List.exists (fun img -> has_value img b vb && not (has_value img a va)) images
              in
              if engine_ordered = bad_state_exists then ok := false
            | _ -> () (* vacuous: engine passes, enumeration has no B value *)
          end
        done
      done;
      !ok)

let prop_persist_sound_and_complete =
  QCheck2.Test.make ~name:"isPersist agrees with exhaustive enumeration" ~count:300 ~print:pp_ops
    gen_ops (fun ops ->
      let entries, last_val, _, final_images = execute ops in
      let ok = ref true in
      for i = 0 to n_lines - 1 do
        match last_val.(i) with
        | None -> ()
        | Some v ->
          let engine_persisted =
            engine_verdict entries (Event.Is_persist { addr = line_addr i; size = write_size })
          in
          let always_present = List.for_all (fun img -> has_value img i v) final_images in
          if engine_persisted <> always_present then ok := false
      done;
      !ok)

(* A hand-picked regression from the paper's running example (Fig. 1a):
   the missing barrier between the backup and the in-place update lets the
   valid flag persist before the backup data. *)
let test_fig1a_scenario () =
  let ops = [ W 0 (* backup.val *); W 1 (* backup.valid *); C 0; C 1; F; W 2 (* array *) ] in
  let entries, _, images, _ = execute ops in
  (* backup.val (line 0) and backup.valid (line 1) were in the same epoch:
     not ordered, and enumeration confirms a state with valid-but-no-data. *)
  let unordered =
    not
      (engine_verdict entries
         (Event.Is_ordered_before
            { a_addr = line_addr 0; a_size = 8; b_addr = line_addr 1; b_size = 8 }))
  in
  Alcotest.(check bool) "engine flags missing barrier" true unordered;
  Alcotest.(check bool) "oracle confirms" true
    (List.exists (fun img -> has_value img 1 '\002' && not (has_value img 0 '\001')) images)

(* --- All models, via the fuzzer's oracle-shaped generator -------------------

   The hand-rolled generator above only covers x86. The fuzz subsystem's
   oracle programs cover every model (HOPS's epoch enumerator, eADR's
   instant durability), so the same sound-and-complete property is
   restated per model through the differential contract: on every
   oracle-eligible program, each embedded checker verdict must equal
   exhaustive enumeration. *)

let prop_model_agrees_with_oracle model =
  QCheck2.Test.make
    ~name:(Model.kind_name model ^ " engine agrees with enumeration on oracle programs")
    ~count:300
    ~print:(fun seed ->
      Gen.program_to_string
        (Gen.oracle_program ~with_checkers:true (Gen.oracle_cfg model) (Rng.create seed)))
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let p = Gen.oracle_program ~with_checkers:true (Gen.oracle_cfg model) (Rng.create seed) in
      match Cross.compare_pair Cross.Engine_vs_oracle p with
      | Cross.Agree | Cross.Skip _ -> true
      | Cross.Disagree _ -> false)

(* --- HOPS unit cases ---------------------------------------------------------

   Known-answer traces for the HOPS interval rules: ofence separates
   epochs for ordering, only dfence makes anything durable. Each verdict
   is checked against both the engine and the epoch-aware enumerator. *)

let hops_pm_size = n_lines * Model.cache_line

let hw i = Event.make (Event.Op (Model.Write { addr = line_addr i; size = write_size }))
let hofence = Event.make (Event.Op Model.Ofence)
let hdfence = Event.make (Event.Op Model.Dfence)

let ordered a b =
  Event.Is_ordered_before
    { a_addr = line_addr a; a_size = write_size; b_addr = line_addr b; b_size = write_size }

let persist i = Event.Is_persist { addr = line_addr i; size = write_size }

(* Engine verdict and oracle ground truth for [checker] appended to [ops];
   both must agree, and both must equal [expect]. *)
let check_hops name ops checker expect =
  let events = Array.of_list (ops @ [ Event.make (Event.Checker checker) ]) in
  let report = Engine.check ~model:Model.Hops events in
  let engine_holds =
    Report.count Report.Not_ordered report = 0 && Report.count Report.Not_persisted report = 0
  in
  Alcotest.(check bool) (name ^ ": engine") expect engine_holds;
  match Oracle.evaluate { Gen.model = Model.Hops; pm_size = hops_pm_size; events } with
  | None -> Alcotest.failf "%s: trace not oracle-eligible" name
  | Some { Oracle.points = [ pt ]; exhaustive = true } ->
    Alcotest.(check bool) (name ^ ": enumeration") expect pt.Oracle.holds
  | Some _ -> Alcotest.failf "%s: expected one exhaustive oracle point" name

let test_hops_ofence_orders () =
  check_hops "w A; ofence; w B; dfence -> A before B"
    [ hw 0; hofence; hw 1; hdfence ]
    (ordered 0 1) true;
  check_hops "w A; ofence; w B; dfence -> B before A fails"
    [ hw 0; hofence; hw 1; hdfence ]
    (ordered 1 0) false

let test_hops_same_epoch_unordered () =
  check_hops "same epoch -> A before B fails" [ hw 0; hw 1; hdfence ] (ordered 0 1) false;
  check_hops "same epoch -> B before A fails" [ hw 0; hw 1; hdfence ] (ordered 1 0) false

let test_hops_dfence_persists () =
  check_hops "w A; dfence -> persisted" [ hw 0; hdfence ] (persist 0) true;
  check_hops "w A alone -> not persisted" [ hw 0 ] (persist 0) false;
  check_hops "w A; ofence -> still not persisted" [ hw 0; hofence ] (persist 0) false

let () =
  Alcotest.run "oracle"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_ordering_sound_and_complete; prop_persist_sound_and_complete ] );
      ( "all-models",
        List.map QCheck_alcotest.to_alcotest
          (List.map prop_model_agrees_with_oracle [ Model.X86; Model.Hops; Model.Eadr ]) );
      ( "hops",
        [
          Alcotest.test_case "ofence separates ordering epochs" `Quick test_hops_ofence_orders;
          Alcotest.test_case "same epoch is unordered" `Quick test_hops_same_epoch_unordered;
          Alcotest.test_case "only dfence persists" `Quick test_hops_dfence_persists;
        ] );
      ("regressions", [ Alcotest.test_case "Fig. 1a missing barrier" `Quick test_fig1a_scenario ]);
    ]
