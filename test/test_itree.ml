(* Interval map and interval tree: unit tests plus qcheck properties
   against naive reference models. *)

open Pmtest_itree

(* ---------- Reference model: array of value options ---------- *)

let universe = 64

let denote map =
  Array.init universe (fun i -> Interval_map.find map i)

(* ---------- Interval map unit tests ---------- *)

let test_set_find () =
  let m = Interval_map.set Interval_map.empty ~lo:10 ~hi:20 "a" in
  Alcotest.(check (option string)) "inside" (Some "a") (Interval_map.find m 15);
  Alcotest.(check (option string)) "left edge" (Some "a") (Interval_map.find m 10);
  Alcotest.(check (option string)) "right edge excluded" None (Interval_map.find m 20);
  Alcotest.(check (option string)) "outside" None (Interval_map.find m 9)

let test_set_splits () =
  let m = Interval_map.set Interval_map.empty ~lo:0 ~hi:30 "a" in
  let m = Interval_map.set m ~lo:10 ~hi:20 "b" in
  Alcotest.(check (option string)) "left keeps a" (Some "a") (Interval_map.find m 5);
  Alcotest.(check (option string)) "middle is b" (Some "b") (Interval_map.find m 15);
  Alcotest.(check (option string)) "right keeps a" (Some "a") (Interval_map.find m 25);
  Alcotest.(check int) "three fragments" 3 (Interval_map.cardinal m)

let test_clear_splits () =
  let m = Interval_map.set Interval_map.empty ~lo:0 ~hi:30 "a" in
  let m = Interval_map.clear m ~lo:10 ~hi:20 in
  Alcotest.(check (option string)) "left survives" (Some "a") (Interval_map.find m 9);
  Alcotest.(check (option string)) "middle gone" None (Interval_map.find m 15);
  Alcotest.(check (option string)) "right survives" (Some "a") (Interval_map.find m 20)

let test_overlapping_clipped () =
  let m = Interval_map.set Interval_map.empty ~lo:0 ~hi:10 "a" in
  let m = Interval_map.set m ~lo:20 ~hi:30 "b" in
  Alcotest.(check int) "two overlaps" 2 (List.length (Interval_map.overlapping m ~lo:5 ~hi:25));
  match Interval_map.overlapping m ~lo:5 ~hi:25 with
  | [ (5, 10, "a"); (20, 25, "b") ] -> ()
  | other ->
    Alcotest.failf "unexpected overlap list: %s"
      (String.concat ";" (List.map (fun (l, h, v) -> Printf.sprintf "(%d,%d,%s)" l h v) other))

let test_covered () =
  let m = Interval_map.set Interval_map.empty ~lo:0 ~hi:10 () in
  let m = Interval_map.set m ~lo:10 ~hi:20 () in
  Alcotest.(check bool) "contiguous covered" true (Interval_map.covered m ~lo:3 ~hi:18);
  let m = Interval_map.clear m ~lo:9 ~hi:10 in
  Alcotest.(check bool) "gap breaks cover" false (Interval_map.covered m ~lo:3 ~hi:18)

let test_update_range () =
  let m = Interval_map.set Interval_map.empty ~lo:0 ~hi:10 1 in
  let m =
    Interval_map.update_range m ~lo:5 ~hi:15 ~f:(function None -> Some 9 | Some v -> Some (v + 1))
  in
  Alcotest.(check (option int)) "untouched" (Some 1) (Interval_map.find m 2);
  Alcotest.(check (option int)) "bumped" (Some 2) (Interval_map.find m 7);
  Alcotest.(check (option int)) "gap filled" (Some 9) (Interval_map.find m 12)

(* ---------- Interval map properties ---------- *)

type op = Set of int * int * int | Clear of int * int

let gen_op =
  QCheck2.Gen.(
    let range = int_range 0 (universe - 1) >>= fun lo ->
      int_range (lo + 1) universe >|= fun hi -> (lo, hi)
    in
    oneof
      [
        (range >>= fun (lo, hi) -> int_range 0 5 >|= fun v -> Set (lo, hi, v));
        (range >|= fun (lo, hi) -> Clear (lo, hi));
      ])

let apply_model arr = function
  | Set (lo, hi, v) -> Array.mapi (fun i x -> if i >= lo && i < hi then Some v else x) arr
  | Clear (lo, hi) -> Array.mapi (fun i x -> if i >= lo && i < hi then None else x) arr

let apply_map m = function
  | Set (lo, hi, v) -> Interval_map.set m ~lo ~hi v
  | Clear (lo, hi) -> Interval_map.clear m ~lo ~hi

let prop_map_matches_model =
  QCheck2.Test.make ~name:"interval_map denotes the same function as an array"
    ~count:500
    QCheck2.Gen.(list_size (int_range 0 40) gen_op)
    (fun ops ->
      let arr = List.fold_left apply_model (Array.make universe None) ops in
      let m = List.fold_left apply_map Interval_map.empty ops in
      denote m = arr)

let prop_covered_matches_model =
  QCheck2.Test.make ~name:"covered agrees with the array model" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 20) gen_op)
        (int_range 0 (universe - 2) >>= fun lo ->
         int_range (lo + 1) (universe - 1) >|= fun hi -> (lo, hi)))
    (fun (ops, (lo, hi)) ->
      let arr = List.fold_left apply_model (Array.make universe None) ops in
      let m = List.fold_left apply_map Interval_map.empty ops in
      let model_covered =
        let rec go i = i >= hi || (arr.(i) <> None && go (i + 1)) in
        go lo
      in
      Interval_map.covered m ~lo ~hi = model_covered)

let prop_equal_denotational =
  QCheck2.Test.make ~name:"equal ignores fragmentation" ~count:200
    QCheck2.Gen.(list_size (int_range 0 20) gen_op)
    (fun ops ->
      let m = List.fold_left apply_map Interval_map.empty ops in
      (* Re-apply a no-op split by setting a sub-range to its own value. *)
      let m' =
        match Interval_map.to_list m with
        | (lo, hi, v) :: _ when hi - lo >= 2 ->
          Interval_map.set m ~lo ~hi:(lo + 1) v
        | _ -> m
      in
      Interval_map.equal ( = ) m m')

(* ---------- Page map: the mutable twin must match exactly ---------- *)

(* Page_map indexes by 4 KiB page, so the interesting cases sit on and
   around page boundaries: ranges that straddle pages, end exactly at a
   boundary, or cover several pages whole. Sample addresses from a window
   spanning three pages plus small offsets to hit all of those. *)
let pm_universe = 3 * 4096 + 96

type pm_op =
  | Pm_set of int * int * int
  | Pm_clear of int * int
  | Pm_update of int * int * int

let gen_pm_range =
  QCheck2.Gen.(
    let point =
      oneof
        [
          int_range 0 pm_universe;
          (* Cluster around page boundaries where the jl bookkeeping lives. *)
          (int_range 0 3 >>= fun page ->
           int_range (-32) 32 >|= fun off -> max 0 (min pm_universe ((page * 4096) + off)));
        ]
    in
    pair point point >|= fun (a, b) ->
    if a = b then (a, b + 1) else if a < b then (a, b) else (b, a))

let gen_pm_op =
  QCheck2.Gen.(
    oneof
      [
        (gen_pm_range >>= fun (lo, hi) -> int_range 0 5 >|= fun v -> Pm_set (lo, hi, v));
        (gen_pm_range >|= fun (lo, hi) -> Pm_clear (lo, hi));
        (gen_pm_range >>= fun (lo, hi) -> int_range 0 5 >|= fun v -> Pm_update (lo, hi, v));
      ])

(* update_range exercised with a genuinely partial f: it drops value 0,
   bumps others, and fills every other gap — covering remove, rewrite and
   insert paths in one op. *)
let pm_update_f v = function
  | Some 0 -> None
  | Some x -> Some (x + v)
  | None -> if v mod 2 = 0 then Some v else None

let apply_pm_imap m = function
  | Pm_set (lo, hi, v) -> Interval_map.set m ~lo ~hi v
  | Pm_clear (lo, hi) -> Interval_map.clear m ~lo ~hi
  | Pm_update (lo, hi, v) -> Interval_map.update_range m ~lo ~hi ~f:(pm_update_f v)

let apply_pm_pmap m = function
  | Pm_set (lo, hi, v) -> Page_map.set m ~lo ~hi v
  | Pm_clear (lo, hi) -> Page_map.clear m ~lo ~hi
  | Pm_update (lo, hi, v) -> Page_map.update_range m ~lo ~hi ~f:(pm_update_f v)

let prop_page_map_matches_interval_map =
  QCheck2.Test.make ~name:"page_map to_list equals interval_map" ~count:500
    QCheck2.Gen.(list_size (int_range 0 40) gen_pm_op)
    (fun ops ->
      let im = List.fold_left apply_pm_imap Interval_map.empty ops in
      let pm = Page_map.create () in
      List.iter (apply_pm_pmap pm) ops;
      Page_map.to_list pm = Interval_map.to_list im
      && Page_map.cardinal pm = Interval_map.cardinal im
      && Page_map.is_empty pm = Interval_map.is_empty im)

let prop_page_map_queries_match =
  QCheck2.Test.make ~name:"page_map queries equal interval_map" ~count:300
    QCheck2.Gen.(pair (list_size (int_range 0 25) gen_pm_op) gen_pm_range)
    (fun (ops, (qlo, qhi)) ->
      let im = List.fold_left apply_pm_imap Interval_map.empty ops in
      let pm = Page_map.create () in
      List.iter (apply_pm_pmap pm) ops;
      let odd v = v mod 2 = 1 in
      Page_map.overlapping pm ~lo:qlo ~hi:qhi = Interval_map.overlapping im ~lo:qlo ~hi:qhi
      && Page_map.covered pm ~lo:qlo ~hi:qhi = Interval_map.covered im ~lo:qlo ~hi:qhi
      && Page_map.covered_by pm ~lo:qlo ~hi:qhi ~f:odd
         = Interval_map.covered_by im ~lo:qlo ~hi:qhi ~f:odd
      && Page_map.exists_overlap pm ~lo:qlo ~hi:qhi ~f:odd
         = Interval_map.exists_overlap im ~lo:qlo ~hi:qhi ~f:odd
      && Page_map.find pm qlo = Interval_map.find im qlo)

let prop_page_map_of_interval_map =
  QCheck2.Test.make ~name:"of_interval_map copies boundaries exactly" ~count:300
    QCheck2.Gen.(list_size (int_range 0 30) gen_pm_op)
    (fun ops ->
      let im = List.fold_left apply_pm_imap Interval_map.empty ops in
      Page_map.to_list (Page_map.of_interval_map im) = Interval_map.to_list im)

let test_page_map_empty_range_rejected () =
  let pm = Page_map.create () in
  Alcotest.check_raises "set" (Invalid_argument "Page_map.set: empty range") (fun () ->
      Page_map.set pm ~lo:5 ~hi:5 ());
  Alcotest.check_raises "clear" (Invalid_argument "Page_map.clear: empty range") (fun () ->
      Page_map.clear pm ~lo:9 ~hi:3)

(* The regression this module almost shipped with: clearing up to a page
   boundary must sever the joined-left flag of a continuation starting
   exactly there, or later reads re-merge a dead interval. *)
let test_page_map_boundary_sever () =
  let pm = Page_map.create () in
  Page_map.set pm ~lo:4000 ~hi:4200 "a";
  Page_map.clear pm ~lo:4000 ~hi:4096;
  Alcotest.(check (list (triple int int string)))
    "right fragment stands alone"
    [ (4096, 4200, "a") ]
    (Page_map.to_list pm);
  Page_map.set pm ~lo:4090 ~hi:4096 "a";
  Alcotest.(check (list (triple int int string)))
    "adjacent equal values stay unmerged"
    [ (4090, 4096, "a"); (4096, 4200, "a") ]
    (Page_map.to_list pm)

(* ---------- Interval tree ---------- *)

let test_tree_overlap () =
  let t = Interval_tree.empty in
  let t = Interval_tree.add t ~lo:0 ~hi:10 "a" in
  let t = Interval_tree.add t ~lo:5 ~hi:15 "b" in
  let t = Interval_tree.add t ~lo:20 ~hi:30 "c" in
  Alcotest.(check int) "two overlap [7,9)" 2 (List.length (Interval_tree.overlapping t ~lo:7 ~hi:9));
  Alcotest.(check int) "stab 5" 2 (List.length (Interval_tree.stab t 5));
  Alcotest.(check bool) "any_overlap finds c" true (Interval_tree.any_overlap t ~lo:25 ~hi:26 <> None);
  Alcotest.(check bool) "gap has none" true (Interval_tree.any_overlap t ~lo:16 ~hi:20 = None)

let test_tree_covered () =
  let t = Interval_tree.add Interval_tree.empty ~lo:0 ~hi:10 () in
  let t = Interval_tree.add t ~lo:10 ~hi:20 () in
  Alcotest.(check bool) "covered across entries" true (Interval_tree.covered t ~lo:0 ~hi:20);
  Alcotest.(check bool) "not covered past end" false (Interval_tree.covered t ~lo:0 ~hi:21)

let test_tree_remove_duplicates () =
  let t = Interval_tree.add Interval_tree.empty ~lo:0 ~hi:10 "x" in
  let t = Interval_tree.add t ~lo:0 ~hi:10 "y" in
  let t = Interval_tree.remove t ~lo:0 ~hi:10 ~f:(fun v -> v = "x") in
  Alcotest.(check int) "one left" 1 (Interval_tree.cardinal t);
  match Interval_tree.to_list t with
  | [ (0, 10, "y") ] -> ()
  | _ -> Alcotest.fail "wrong entry removed"

let gen_intervals =
  QCheck2.Gen.(
    list_size (int_range 0 60)
      ( int_range 0 (universe - 2) >>= fun lo ->
        int_range (lo + 1) (universe - 1) >|= fun hi -> (lo, hi) ))

let prop_tree_invariants =
  QCheck2.Test.make ~name:"interval tree stays balanced and augmented" ~count:300 gen_intervals
    (fun ivs ->
      let t =
        List.fold_left (fun t (lo, hi) -> Interval_tree.add t ~lo ~hi ()) Interval_tree.empty ivs
      in
      Interval_tree.check_invariants t
      && Interval_tree.cardinal t = List.length ivs
      &&
      (* Height must stay logarithmic: AVL guarantees < 1.45 log2(n+2). *)
      let n = List.length ivs in
      float_of_int (Interval_tree.height t) <= (1.45 *. (log (float_of_int (n + 2)) /. log 2.)) +. 1.0)

let prop_tree_overlap_matches_naive =
  QCheck2.Test.make ~name:"overlapping agrees with naive scan" ~count:300
    QCheck2.Gen.(
      pair gen_intervals
        ( int_range 0 (universe - 2) >>= fun lo ->
          int_range (lo + 1) (universe - 1) >|= fun hi -> (lo, hi) ))
    (fun (ivs, (qlo, qhi)) ->
      let t =
        List.fold_left (fun t (lo, hi) -> Interval_tree.add t ~lo ~hi ()) Interval_tree.empty ivs
      in
      let naive =
        List.sort compare (List.filter (fun (lo, hi) -> lo < qhi && qlo < hi) ivs)
      in
      let got =
        List.sort compare
          (List.map (fun (lo, hi, ()) -> (lo, hi)) (Interval_tree.overlapping t ~lo:qlo ~hi:qhi))
      in
      naive = got)

let prop_tree_remove_then_absent =
  QCheck2.Test.make ~name:"remove deletes exactly one matching entry" ~count:300 gen_intervals
    (fun ivs ->
      match ivs with
      | [] -> true
      | (lo, hi) :: _ ->
        let t =
          List.fold_left (fun t (l, h) -> Interval_tree.add t ~lo:l ~hi:h ()) Interval_tree.empty
            ivs
        in
        let t' = Interval_tree.remove t ~lo ~hi ~f:(fun () -> true) in
        Interval_tree.check_invariants t'
        && Interval_tree.cardinal t' = List.length ivs - 1)

let () =
  let qtests =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_map_matches_model;
        prop_covered_matches_model;
        prop_equal_denotational;
        prop_page_map_matches_interval_map;
        prop_page_map_queries_match;
        prop_page_map_of_interval_map;
        prop_tree_invariants;
        prop_tree_overlap_matches_naive;
        prop_tree_remove_then_absent;
      ]
  in
  Alcotest.run "itree"
    [
      ( "interval_map",
        [
          Alcotest.test_case "set/find boundaries" `Quick test_set_find;
          Alcotest.test_case "set splits straddlers" `Quick test_set_splits;
          Alcotest.test_case "clear splits straddlers" `Quick test_clear_splits;
          Alcotest.test_case "overlapping is clipped and ordered" `Quick test_overlapping_clipped;
          Alcotest.test_case "covered detects gaps" `Quick test_covered;
          Alcotest.test_case "update_range splits and fills" `Quick test_update_range;
        ] );
      ( "page_map",
        [
          Alcotest.test_case "empty ranges rejected" `Quick test_page_map_empty_range_rejected;
          Alcotest.test_case "page-boundary clear severs joins" `Quick test_page_map_boundary_sever;
        ] );
      ( "interval_tree",
        [
          Alcotest.test_case "overlap queries" `Quick test_tree_overlap;
          Alcotest.test_case "covered across entries" `Quick test_tree_covered;
          Alcotest.test_case "remove with duplicate keys" `Quick test_tree_remove_duplicates;
        ] );
      ("properties", qtests);
    ]
