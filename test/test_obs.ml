(* Observability layer: transparency (metrics cannot change verdicts),
   snapshot invariants, and the machine-readable sinks. *)

open Pmtest_util
open Pmtest_model
module Obs = Pmtest_obs.Obs
module Runtime = Pmtest_core.Runtime
module Report = Pmtest_core.Report
module Gen = Pmtest_fuzz.Gen

let chunk k arr =
  let n = Array.length arr in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let len = min k (n - i) in
      go (i + len) (Array.sub arr i len :: acc)
  in
  go 0 []

let run_sections ~workers ~obs ~model sections =
  let rt = Runtime.create ~workers ~model ~obs () in
  List.iter (Runtime.send_trace rt) sections;
  Runtime.shutdown rt

let report_string r = Format.asprintf "%a" Report.pp r

(* --- Transparency: reports are byte-identical with metrics on or off ---------- *)

let model_of_seed seed =
  match seed mod 3 with 0 -> Model.X86 | 1 -> Model.Hops | _ -> Model.Eadr

let prop_transparent =
  let gen_seed = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"metrics on/off yield byte-identical reports" ~count:50 gen_seed
    (fun seed ->
      let model = model_of_seed seed in
      let p = Gen.generate (Gen.default_cfg model) (Rng.create seed) in
      let sections = chunk 7 p.Gen.events in
      List.for_all
        (fun workers ->
          let off =
            report_string (run_sections ~workers ~obs:Obs.disabled ~model:p.Gen.model sections)
          in
          let on =
            report_string
              (run_sections ~workers ~obs:(Obs.create ()) ~model:p.Gen.model sections)
          in
          String.equal off on)
        [ 0; 4 ])

(* --- Snapshot invariants ------------------------------------------------------ *)

let sections_for_invariants () =
  let p = Gen.generate (Gen.default_cfg Model.X86) (Rng.create 7) in
  let q = Gen.generate (Gen.default_cfg Model.X86) (Rng.create 8) in
  List.concat (List.init 20 (fun _ -> chunk 5 p.Gen.events @ chunk 9 q.Gen.events))

let check_hist_invariants name (h : Obs.hist) ~expected_total =
  Alcotest.(check int) (name ^ " total") expected_total h.Obs.total;
  Alcotest.(check int)
    (name ^ " bucket sum = total")
    h.Obs.total
    (List.fold_left (fun acc (_, c) -> acc + c) 0 h.Obs.buckets);
  if h.Obs.total > 0 then begin
    Alcotest.(check bool) (name ^ " min <= max") true (h.Obs.min_ns <= h.Obs.max_ns);
    Alcotest.(check bool)
      (name ^ " sum bounded by total*min/max")
      true
      (h.Obs.sum_ns >= h.Obs.total * h.Obs.min_ns && h.Obs.sum_ns <= h.Obs.total * h.Obs.max_ns)
  end

let counters (s : Obs.snapshot) =
  [
    s.Obs.events_traced;
    s.Obs.sections_sent;
    s.Obs.sections_checked;
    s.Obs.sections_merged;
    s.Obs.sections_dropped;
    s.Obs.queue_hwm;
    s.Obs.reorder_hwm;
    s.Obs.entries_checked;
    s.Obs.ops_checked;
    s.Obs.checkers_run;
    s.Obs.diagnostics;
    s.Obs.batches;
    s.Obs.batch_sections_max;
    s.Obs.arenas_allocated;
    s.Obs.arenas_reused;
  ]

let test_snapshot_invariants () =
  let obs = Obs.create () in
  let rt = Runtime.create ~workers:4 ~obs () in
  let sections = sections_for_invariants () in
  let prev = ref (Obs.snapshot obs) in
  List.iteri
    (fun i sec ->
      Runtime.send_trace rt sec;
      if i mod 13 = 0 then begin
        let s = Obs.snapshot obs in
        (* Counters never go backwards from one snapshot to the next. *)
        List.iter2
          (fun a b -> Alcotest.(check bool) "monotonic counter" true (a <= b))
          (counters !prev) (counters s);
        prev := s
      end)
    sections;
  ignore (Runtime.shutdown rt);
  let s = Obs.snapshot obs in
  let n = List.length sections in
  Alcotest.(check int) "all sections sent" n s.Obs.sections_sent;
  Alcotest.(check int) "all sections checked" n s.Obs.sections_checked;
  Alcotest.(check int) "all sections merged" n s.Obs.sections_merged;
  Alcotest.(check int)
    "per-worker sections sum to sections_checked"
    s.Obs.sections_checked
    (List.fold_left (fun acc (w : Obs.worker_stat) -> acc + w.Obs.sections) 0 s.Obs.workers);
  check_hist_invariants "check_hist" s.Obs.check_hist ~expected_total:s.Obs.sections_checked;
  check_hist_invariants "e2e_hist" s.Obs.e2e_hist ~expected_total:s.Obs.sections_merged;
  Alcotest.(check bool) "spans bounded" true (List.length s.Obs.spans <= 1024);
  List.iter
    (fun (sp : Obs.span) ->
      Alcotest.(check bool) "span stamps ordered" true
        (0 <= sp.Obs.sent_ns
        && sp.Obs.sent_ns <= sp.Obs.start_ns
        && sp.Obs.start_ns <= sp.Obs.done_ns
        && sp.Obs.done_ns <= sp.Obs.merged_ns);
      (* End-to-end latency includes the check. *)
      Alcotest.(check bool) "e2e >= check" true
        (sp.Obs.merged_ns - sp.Obs.sent_ns >= sp.Obs.done_ns - sp.Obs.start_ns))
    s.Obs.spans;
  Alcotest.(check bool) "elapsed positive" true (s.Obs.elapsed_ns >= 0)

let test_disabled_snapshot_is_empty () =
  let s = Obs.snapshot Obs.disabled in
  List.iter (fun c -> Alcotest.(check int) "zero" 0 c) (counters s);
  Alcotest.(check int) "no spans" 0 (List.length s.Obs.spans)

(* --- Golden sink output ------------------------------------------------------- *)

let synthetic : Obs.snapshot =
  {
    Obs.elapsed_ns = 5000;
    events_traced = 42;
    sections_sent = 3;
    sections_checked = 3;
    sections_merged = 3;
    sections_dropped = 1;
    queue_hwm = 2;
    reorder_hwm = 1;
    entries_checked = 40;
    ops_checked = 30;
    checkers_run = 5;
    diagnostics = 2;
    batches = 4;
    batch_sections_max = 2;
    arenas_allocated = 3;
    arenas_reused = 1;
    repair_traces = 2;
    repair_edits = 5;
    repair_rounds = 4;
    repair_ns = 800;
    repair_verify_ns = 650;
    serve =
      {
        Obs.sessions_opened = 2;
        sessions_closed = 2;
        sessions_hwm = 2;
        frames_in = 6;
        frames_out = 4;
        frame_bytes_in = 900;
        frame_bytes_out = 120;
        frames_corrupt = 1;
        sections_shed = 0;
        inflight_hwm = 3;
      };
    farm =
      {
        Obs.farm_workers = 2;
        farm_workers_lost = 1;
        farm_jobs = 8;
        farm_jobs_done = 8;
        farm_offers = 9;
        farm_retries = 1;
        farm_steals = 1;
        farm_reassignments = 1;
        farm_findings = 3;
        farm_dup_findings = 1;
        farm_nondet = 0;
        farm_heartbeats = 12;
        farm_checkpoints = 8;
      };
    workers =
      [
        { Obs.id = 0; sections = 2; busy_ns = 700 }; { Obs.id = 1; sections = 1; busy_ns = 300 };
      ];
    shards =
      [
        { Obs.shard = 0; shard_sessions = 1; shard_sections = 2 };
        { Obs.shard = 1; shard_sessions = 1; shard_sections = 1 };
      ];
    check_hist =
      { Obs.total = 3; sum_ns = 1000; min_ns = 100; max_ns = 600; buckets = [ (6, 1); (8, 2) ] };
    e2e_hist =
      { Obs.total = 3; sum_ns = 2100; min_ns = 400; max_ns = 1000; buckets = [ (8, 1); (9, 2) ] };
    serve_hist =
      { Obs.total = 2; sum_ns = 900; min_ns = 300; max_ns = 600; buckets = [ (8, 1); (9, 1) ] };
    spans =
      [
        {
          Obs.seq = 0;
          worker = 0;
          entries = 10;
          sent_ns = 10;
          start_ns = 20;
          done_ns = 320;
          merged_ns = 330;
        };
        {
          Obs.seq = 1;
          worker = 1;
          entries = 16;
          sent_ns = 40;
          start_ns = 50;
          done_ns = 450;
          merged_ns = 470;
        };
      ];
  }

let golden_tsv =
  String.concat "\n"
    [
      "counter\telapsed_ns\t5000";
      "counter\tevents_traced\t42";
      "counter\tsections_sent\t3";
      "counter\tsections_checked\t3";
      "counter\tsections_merged\t3";
      "counter\tsections_dropped\t1";
      "counter\tqueue_hwm\t2";
      "counter\treorder_hwm\t1";
      "counter\tentries_checked\t40";
      "counter\tops_checked\t30";
      "counter\tcheckers_run\t5";
      "counter\tdiagnostics\t2";
      "counter\tbatches\t4";
      "counter\tbatch_sections_max\t2";
      "counter\tarenas_allocated\t3";
      "counter\tarenas_reused\t1";
      "counter\trepair_traces\t2";
      "counter\trepair_edits\t5";
      "counter\trepair_rounds\t4";
      "counter\trepair_ns\t800";
      "counter\trepair_verify_ns\t650";
      "counter\tserve_sessions_opened\t2";
      "counter\tserve_sessions_closed\t2";
      "counter\tserve_sessions_hwm\t2";
      "counter\tserve_frames_in\t6";
      "counter\tserve_frames_out\t4";
      "counter\tserve_frame_bytes_in\t900";
      "counter\tserve_frame_bytes_out\t120";
      "counter\tserve_frames_corrupt\t1";
      "counter\tserve_sections_shed\t0";
      "counter\tserve_inflight_hwm\t3";
      "counter\tfarm_workers\t2";
      "counter\tfarm_workers_lost\t1";
      "counter\tfarm_jobs\t8";
      "counter\tfarm_jobs_done\t8";
      "counter\tfarm_offers\t9";
      "counter\tfarm_retries\t1";
      "counter\tfarm_steals\t1";
      "counter\tfarm_reassignments\t1";
      "counter\tfarm_findings\t3";
      "counter\tfarm_dup_findings\t1";
      "counter\tfarm_nondet\t0";
      "counter\tfarm_heartbeats\t12";
      "counter\tfarm_checkpoints\t8";
      "worker\t0\t2\t700";
      "worker\t1\t1\t300";
      "shard\t0\t1\t2";
      "shard\t1\t1\t1";
      "hist\tcheck\t3\t1000\t100\t600";
      "histbucket\tcheck\t6\t1";
      "histbucket\tcheck\t8\t2";
      "hist\te2e\t3\t2100\t400\t1000";
      "histbucket\te2e\t8\t1";
      "histbucket\te2e\t9\t2";
      "hist\tserve\t2\t900\t300\t600";
      "histbucket\tserve\t8\t1";
      "histbucket\tserve\t9\t1";
      "span\t0\t0\t10\t10\t20\t320\t330";
      "span\t1\t1\t16\t40\t50\t450\t470";
      "";
    ]

let golden_jsonl =
  String.concat "\n"
    [
      {|{"type":"counters","elapsed_ns":5000,"events_traced":42,"sections_sent":3,"sections_checked":3,"sections_merged":3,"sections_dropped":1,"queue_hwm":2,"reorder_hwm":1,"entries_checked":40,"ops_checked":30,"checkers_run":5,"diagnostics":2,"batches":4,"batch_sections_max":2,"arenas_allocated":3,"arenas_reused":1,"repair_traces":2,"repair_edits":5,"repair_rounds":4,"repair_ns":800,"repair_verify_ns":650,"serve_sessions_opened":2,"serve_sessions_closed":2,"serve_sessions_hwm":2,"serve_frames_in":6,"serve_frames_out":4,"serve_frame_bytes_in":900,"serve_frame_bytes_out":120,"serve_frames_corrupt":1,"serve_sections_shed":0,"serve_inflight_hwm":3,"farm_workers":2,"farm_workers_lost":1,"farm_jobs":8,"farm_jobs_done":8,"farm_offers":9,"farm_retries":1,"farm_steals":1,"farm_reassignments":1,"farm_findings":3,"farm_dup_findings":1,"farm_nondet":0,"farm_heartbeats":12,"farm_checkpoints":8}|};
      {|{"type":"worker","id":0,"sections":2,"busy_ns":700}|};
      {|{"type":"worker","id":1,"sections":1,"busy_ns":300}|};
      {|{"type":"shard","shard":0,"sessions":1,"sections":2}|};
      {|{"type":"shard","shard":1,"sessions":1,"sections":1}|};
      {|{"type":"hist","name":"check","total":3,"sum_ns":1000,"min_ns":100,"max_ns":600,"buckets":[[6,1],[8,2]]}|};
      {|{"type":"hist","name":"e2e","total":3,"sum_ns":2100,"min_ns":400,"max_ns":1000,"buckets":[[8,1],[9,2]]}|};
      {|{"type":"hist","name":"serve","total":2,"sum_ns":900,"min_ns":300,"max_ns":600,"buckets":[[8,1],[9,1]]}|};
      {|{"type":"span","seq":0,"worker":0,"entries":10,"sent_ns":10,"start_ns":20,"done_ns":320,"merged_ns":330}|};
      {|{"type":"span","seq":1,"worker":1,"entries":16,"sent_ns":40,"start_ns":50,"done_ns":450,"merged_ns":470}|};
      "";
    ]

let test_golden_tsv () = Alcotest.(check string) "tsv" golden_tsv (Obs.to_tsv synthetic)
let test_golden_jsonl () = Alcotest.(check string) "jsonl" golden_jsonl (Obs.to_jsonl synthetic)

let test_tsv_round_trip_synthetic () =
  match Obs.of_tsv (Obs.to_tsv synthetic) with
  | Error e -> Alcotest.failf "of_tsv: %s" e
  | Ok s -> Alcotest.(check bool) "equal" true (s = synthetic)

let test_tsv_round_trip_real () =
  let obs = Obs.create () in
  let p = Gen.generate (Gen.default_cfg Model.X86) (Rng.create 3) in
  ignore (run_sections ~workers:2 ~obs ~model:Model.X86 (chunk 6 p.Gen.events));
  let snap = Obs.snapshot obs in
  match Obs.of_tsv (Obs.to_tsv snap) with
  | Error e -> Alcotest.failf "of_tsv: %s" e
  | Ok s -> Alcotest.(check bool) "equal" true (s = snap)

(* --- `stat --machine` output parses back -------------------------------------- *)

let test_stat_machine_parses () =
  let cli =
    List.find_opt Sys.file_exists
      [ "../bin/pmtest_cli.exe"; "_build/default/bin/pmtest_cli.exe" ]
  in
  let corpus_dir = if Sys.file_exists "../fuzz/corpus" then "../fuzz/corpus" else "fuzz/corpus" in
  let case = Filename.concat corpus_dir "x86-exclusion-hole-shadow-staleness.pmt" in
  match cli with
  | None -> Alcotest.skip ()
  | Some cli ->
    let out = Filename.temp_file "pmtest_stat" ".tsv" in
    Fun.protect
      ~finally:(fun () -> Sys.remove out)
      (fun () ->
        let cmd =
          Printf.sprintf "%s stat %s --machine > %s 2>/dev/null" (Filename.quote cli)
            (Filename.quote case) (Filename.quote out)
        in
        Alcotest.(check int) "stat exits 0" 0 (Sys.command cmd);
        let ic = open_in out in
        let text =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        match Obs.of_tsv text with
        | Error e -> Alcotest.failf "stat --machine output does not parse: %s" e
        | Ok s ->
          Alcotest.(check int) "one section" 1 s.Obs.sections_sent;
          Alcotest.(check int) "five events traced" 5 s.Obs.events_traced;
          Alcotest.(check int) "five entries checked" 5 s.Obs.entries_checked)

let () =
  Alcotest.run "obs"
    [
      ("transparency", [ QCheck_alcotest.to_alcotest prop_transparent ]);
      ( "invariants",
        [
          Alcotest.test_case "pipeline snapshot invariants" `Quick test_snapshot_invariants;
          Alcotest.test_case "disabled snapshot is empty" `Quick test_disabled_snapshot_is_empty;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "golden TSV" `Quick test_golden_tsv;
          Alcotest.test_case "golden JSON lines" `Quick test_golden_jsonl;
          Alcotest.test_case "TSV round-trips (synthetic)" `Quick test_tsv_round_trip_synthetic;
          Alcotest.test_case "TSV round-trips (real run)" `Quick test_tsv_round_trip_real;
          Alcotest.test_case "stat --machine parses back" `Quick test_stat_machine_parses;
        ] );
    ]
