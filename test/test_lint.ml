(* The static lint: per-rule golden traces, suppression and rule
   selection, validation against the bug catalog from checker-stripped
   op streams, and agreement with the dynamic engine on the shared
   performance diagnostics. *)

open Pmtest_model
open Pmtest_trace
module Engine = Pmtest_core.Engine
module Report = Pmtest_core.Report
module Lint = Pmtest_lint.Lint
module Rule = Pmtest_lint.Rule
module Fixit = Pmtest_lint.Fixit
open Pmtest_bugdb

let e kind = Event.make kind
let w addr size = e (Event.Op (Model.Write { addr; size }))
let clwb addr size = e (Event.Op (Model.Clwb { addr; size }))
let sfence = e (Event.Op Model.Sfence)
let dfence = e (Event.Op Model.Dfence)
let tx k = e (Event.Tx k)
let tx_add addr size = e (Event.Tx (Event.Tx_add { addr; size }))
let exclude addr size = e (Event.Control (Event.Exclude { addr; size }))
let include_ addr size = e (Event.Control (Event.Include { addr; size }))
let lint_off rule = e (Event.Control (Event.Lint_off { rule }))
let lint_on rule = e (Event.Control (Event.Lint_on { rule }))

let run ?model ?rules entries = Lint.run ?model ?rules (Array.of_list entries)

let fired result =
  List.sort_uniq compare (List.map (fun f -> Rule.id f.Lint.rule) result.Lint.findings)

let check_rules ?model ?rules entries expected =
  Alcotest.(check (list string))
    "rules fired" (List.sort_uniq compare expected)
    (fired (run ?model ?rules entries))

(* --- Golden traces, one per rule ----------------------------------------- *)

let test_clean () =
  check_rules [ w 0x100 8; clwb 0x100 8; sfence ] [];
  check_rules [ w 0x100 64; clwb 0x100 64; sfence; w 0x140 8; clwb 0x140 8; sfence ] []

let test_write_never_flushed () =
  check_rules [ w 0x100 8 ] [ "write-never-flushed" ];
  (* A partial writeback leaves the rest dirty. *)
  check_rules [ w 0x100 64; clwb 0x100 8; sfence ] [ "write-never-flushed" ];
  (* One finding per store however the shadow fragments it. *)
  let r = run [ w 0x100 64; clwb 0x110 8; sfence ] in
  Alcotest.(check int) "one finding per store" 1 (List.length r.Lint.findings)

let test_flush_without_fence () =
  check_rules [ w 0x100 8; clwb 0x100 8 ] [ "flush-without-fence" ];
  (* Any later fence completes it — even a distant one. *)
  check_rules [ w 0x100 8; clwb 0x100 8; w 0x200 8; clwb 0x200 8; sfence ] []

let test_redundant_fence () =
  check_rules [ w 0x100 8; clwb 0x100 8; sfence; sfence ] [ "redundant-fence" ];
  (* A fence before any writeback orders nothing. *)
  check_rules [ sfence; w 0x100 8; clwb 0x100 8; sfence ] [ "redundant-fence" ]

let test_duplicate_flush () =
  check_rules [ w 0x100 8; clwb 0x100 8; clwb 0x100 8; sfence ] [ "duplicate-flush" ];
  (* Also across a fence: the pending write was already flushed. *)
  check_rules [ w 0x100 8; clwb 0x100 8; sfence; clwb 0x100 8; sfence ] [ "duplicate-flush" ];
  (* A fresh store resets the range: no duplicate. *)
  check_rules [ w 0x100 8; clwb 0x100 8; sfence; w 0x100 8; clwb 0x100 8; sfence ] []

let test_unnecessary_flush () =
  check_rules [ clwb 0x100 8; sfence ] [ "unnecessary-flush" ];
  check_rules [ w 0x100 8; clwb 0x100 16; sfence ] [ "unnecessary-flush" ]

let test_write_after_flush () =
  check_rules
    [ w 0x100 8; clwb 0x100 8; w 0x100 8; clwb 0x100 8; sfence ]
    [ "write-after-flush" ];
  (* After the fence the flush is complete: no hazard. *)
  check_rules [ w 0x100 8; clwb 0x100 8; sfence; w 0x100 8; clwb 0x100 8; sfence ] []

let test_unlogged_tx_write () =
  check_rules
    [ tx Event.Tx_begin; w 0x100 8; tx Event.Tx_commit; clwb 0x100 8; sfence ]
    [ "unlogged-tx-write" ];
  check_rules
    [ tx Event.Tx_begin; tx_add 0x100 8; w 0x100 8; tx Event.Tx_commit; clwb 0x100 8; sfence ]
    []

let test_unbalanced_tx () =
  check_rules [ tx Event.Tx_begin; tx_add 0x100 8; w 0x100 8; clwb 0x100 8; sfence ]
    [ "unbalanced-tx" ];
  check_rules [ tx Event.Tx_commit ] [ "unbalanced-tx" ];
  check_rules [ tx Event.Tx_begin; tx Event.Tx_abort ] []

let test_unmatched_exclude () =
  (* Off by default: allocator metadata stays excluded for a whole run. *)
  check_rules [ exclude 0x0 0x100 ] [];
  check_rules ~rules:Rule.everything [ exclude 0x0 0x100 ] [ "unmatched-exclude" ];
  check_rules ~rules:Rule.everything [ exclude 0x0 0x100; include_ 0x0 0x100 ] []

let test_exclusion_scope () =
  (* Ops on excluded ranges produce nothing — engine semantics. *)
  check_rules [ exclude 0x100 0x100; w 0x140 8; clwb 0x180 8; sfence ] [];
  (* ... but an excluded writeback still counts for fence accounting. *)
  check_rules [ exclude 0x100 0x100; w 0x140 8; clwb 0x140 8; sfence ] []

let test_models () =
  (* HOPS: durability comes from dfence, not writebacks. *)
  check_rules ~model:Model.Hops [ w 0x100 8; dfence ] [];
  check_rules ~model:Model.Hops [ w 0x100 8 ] [ "write-never-flushed" ];
  check_rules ~model:Model.Hops [ w 0x100 8; dfence; dfence ] [ "redundant-fence" ];
  (* eADR: every writeback is overhead, nothing is ever dirty. *)
  check_rules ~model:Model.Eadr [ w 0x100 8 ] [];
  check_rules ~model:Model.Eadr [ w 0x100 8; clwb 0x100 8; sfence ] [ "unnecessary-flush" ];
  (* Ops outside the model's ISA are the engine's business, not the lint's. *)
  check_rules [ dfence ] []

(* --- Suppression and rule selection -------------------------------------- *)

let test_suppression () =
  check_rules [ lint_off "write-never-flushed"; w 0x100 8; lint_on "write-never-flushed" ] [];
  check_rules [ lint_off "*"; w 0x100 8; lint_on "*" ] [];
  (* The scope that matters is the one at the store, not at end of trace. *)
  check_rules [ w 0x100 8; lint_off "write-never-flushed" ] [ "write-never-flushed" ];
  (* Other rules keep firing inside a named scope. *)
  check_rules
    [ lint_off "write-never-flushed"; w 0x100 8; clwb 0x100 8; clwb 0x100 8; sfence;
      lint_on "write-never-flushed" ]
    [ "duplicate-flush" ]

let test_rule_selection () =
  let only spec =
    match Rule.of_spec spec with Ok s -> s | Error e -> Alcotest.fail e
  in
  let dirty_dup = [ w 0x100 8; clwb 0x100 8; clwb 0x100 8 ] in
  check_rules ~rules:(only "duplicate-flush") dirty_dup [ "duplicate-flush" ];
  check_rules ~rules:(only "-duplicate-flush") dirty_dup [ "flush-without-fence" ];
  check_rules ~rules:(only "none") dirty_dup [];
  (match Rule.of_spec "no-such-rule" with
  | Ok _ -> Alcotest.fail "bad spec accepted"
  | Error _ -> ());
  Alcotest.(check bool) "default excludes unmatched-exclude" false
    (Rule.mem Rule.default Rule.Unmatched_exclude);
  Alcotest.(check int) "all rules listed" 9 (List.length Rule.all)

(* --- Output plumbing ------------------------------------------------------ *)

let test_report_and_output () =
  let r = run [ w 0x100 8; clwb 0x100 8; clwb 0x100 8; sfence ] in
  let report = Lint.report_of r in
  Alcotest.(check int) "duplicate-flush files under the engine's kind" 1
    (Report.count Report.Duplicate_writeback report);
  Alcotest.(check bool) "warn only" false (Report.has_fail report);
  let r = run [ w 0x100 8 ] in
  Alcotest.(check bool) "dirty store is a FAIL" true (Lint.has_fail r);
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  (match (List.hd r.Lint.findings).Lint.fixit with
  | Some (Fixit.Insert_flush [ { Fixit.addr = 0x100; size = 8 } ]) -> ()
  | Some fix -> Alcotest.failf "unexpected fix-it %s" (Fixit.to_string fix)
  | None -> Alcotest.fail "expected a fix-it");
  Alcotest.(check bool) "fix-it machine form is stable" true
    (contains (List.hd (Lint.machine_lines r)) "insert-flush=0x100+8");
  List.iter
    (fun line ->
      Alcotest.(check int) "machine line has five fields" 5
        (List.length (String.split_on_char '\t' line)))
    (Lint.machine_lines r)

(* The full machine-line grammar, pinned: severity, rule id, location,
   message and the stable fix-it column ("-" when the lint suggests no
   mechanical edit, as for a TX_END with no transaction open). *)
let test_machine_lines_golden () =
  let le n kind = Event.make ~loc:(Pmtest_util.Loc.make ~file:"t.c" ~line:n) kind in
  let trace =
    [|
      le 1 (Event.Op (Model.Write { addr = 0x100; size = 8 }));
      le 2 (Event.Op (Model.Write { addr = 0x140; size = 8 }));
      le 3 (Event.Op (Model.Clwb { addr = 0x140; size = 8 }));
      le 4 (Event.Op (Model.Clwb { addr = 0x140; size = 8 }));
      le 5 (Event.Op Model.Sfence);
      le 6 (Event.Tx Event.Tx_commit);
    |]
  in
  Alcotest.(check (list string))
    "golden machine TSV"
    [
      "WARN\tduplicate-flush\tt.c:4\tpersistent object [0x140,+8) written back more than once \
       (already flushed at t.c:3)\tdelete";
      "FAIL\tunbalanced-tx\tt.c:6\ttransaction end with no transaction open\t-";
      "FAIL\twrite-never-flushed\tt.c:1\tstore to [0x100,+8) is never written \
       back\tinsert-flush=0x100+8";
    ]
    (Lint.machine_lines (Lint.run trace))

let test_rule_ids_round_trip () =
  List.iter
    (fun r ->
      match Rule.of_id (Rule.id r) with
      | Some r' -> Alcotest.(check string) "same rule back" (Rule.id r) (Rule.id r')
      | None -> Alcotest.failf "rule id %S does not parse back" (Rule.id r))
    Rule.all;
  Alcotest.(check bool) "unknown id rejected" true (Rule.of_id "no-such-rule" = None);
  (* The of_spec error must teach the valid vocabulary. *)
  match Rule.of_spec "no-such-rule" with
  | Ok _ -> Alcotest.fail "bogus rule accepted"
  | Error e ->
    List.iter
      (fun r ->
        let id = Rule.id r in
        let n = String.length id in
        let rec contains i =
          i + n <= String.length e && (String.sub e i n = id || contains (i + 1))
        in
        Alcotest.(check bool) (id ^ " listed in the error") true (contains 0))
      Rule.all

let test_strip_checkers () =
  let trace =
    [|
      w 0x100 8; clwb 0x100 8; sfence;
      e (Event.Checker (Event.Is_persist { addr = 0x100; size = 8 }));
      tx Event.Tx_checker_start; tx Event.Tx_checker_end;
    |]
  in
  let stripped = Lint.strip_checkers trace in
  Alcotest.(check int) "checkers dropped" 3 (Array.length stripped)

(* --- Validation against the bug catalog ----------------------------------- *)

(* The statically visible cases: given only the raw op stream (checkers
   stripped), the named rule must fire on the buggy trace and nothing may
   fire on the clean twin. Ordering-intent cases (ord-1/3/4, xl-3) are
   deliberately absent: a later fence in the stream covers their flushes,
   so only a checker can express the violated requirement. *)
let bugdb_expected =
  [
    ("ord-2", "redundant-fence");
    ("wb-1", "write-never-flushed");
    ("wb-2", "write-never-flushed");
    ("wb-3", "write-never-flushed");
    ("wb-4", "write-never-flushed");
    ("wb-5", "write-never-flushed");
    ("wb-6", "write-never-flushed");
    ("pwb-1", "duplicate-flush");
    ("pwb-2", "duplicate-flush");
    ("bk-17", "write-never-flushed");
    ("cp-6", "flush-without-fence");
    ("cp-7", "flush-without-fence");
    ("t6-xips", "duplicate-flush");
    ("t6-files", "unnecessary-flush");
    ("t6-journal", "duplicate-flush");
    ("xq-1", "write-never-flushed");
    ("xq-2", "write-never-flushed");
    ("xq-3", "write-never-flushed");
    ("xl-1", "write-never-flushed");
    ("xl-2", "write-never-flushed");
    ("xn-1", "write-never-flushed");
    ("xn-2", "write-never-flushed");
    ("xn-3", "write-never-flushed");
  ]

let find_case id =
  match List.find_opt (fun c -> c.Case.id = id) Catalog.all with
  | Some c -> c
  | None -> Alcotest.failf "no catalog case %s" id

let test_bugdb_detection () =
  List.iter
    (fun (id, rule) ->
      let case = find_case id in
      let result = Lint.run (Lint.strip_checkers (Case.trace case)) in
      let ids = List.map (fun f -> Rule.id f.Lint.rule) result.Lint.findings in
      Alcotest.(check bool) (id ^ " flagged by " ^ rule) true (List.mem rule ids))
    bugdb_expected

let test_bugdb_clean_twins () =
  (* Zero findings on every clean twin in the whole catalog — the lint's
     false-positive control, same bar as the dynamic engine's. *)
  List.iter
    (fun case ->
      let result = Lint.run (Lint.strip_checkers (Case.trace_clean case)) in
      Alcotest.(check int) (case.Case.id ^ " clean twin") 0
        (List.length result.Lint.findings))
    Catalog.all

(* --- Agreement with the dynamic engine ------------------------------------ *)

(* On the diagnostics both tools implement (unnecessary / duplicate
   writeback), the lint reproduces the engine's semantics instruction for
   instruction — same exclusion holes, same per-clwb dedup. *)
let gen_trace =
  let module G = QCheck2.Gen in
  let addr = G.map (fun i -> i * 16) (G.int_range 0 15) in
  let size = G.oneofl [ 8; 16; 32 ] in
  let entry =
    G.frequency
      [
        (4, G.map2 (fun a s -> w a s) addr size);
        (4, G.map2 (fun a s -> clwb a s) addr size);
        (2, G.return sfence);
        (1, G.map2 (fun a s -> exclude a s) addr size);
        (1, G.map2 (fun a s -> include_ a s) addr size);
      ]
  in
  G.map Array.of_list (G.list_size (G.int_range 0 60) entry)

let prop_agrees_with_engine =
  QCheck2.Test.make ~name:"lint agrees with Engine.check on writeback diagnostics" ~count:500
    gen_trace (fun trace ->
      let engine = Engine.check trace in
      let lint = Lint.report_of (Lint.run trace) in
      Report.count Report.Unnecessary_writeback engine
      = Report.count Report.Unnecessary_writeback lint
      && Report.count Report.Duplicate_writeback engine
         = Report.count Report.Duplicate_writeback lint)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "clean traces" `Quick test_clean;
          Alcotest.test_case "write-never-flushed" `Quick test_write_never_flushed;
          Alcotest.test_case "flush-without-fence" `Quick test_flush_without_fence;
          Alcotest.test_case "redundant-fence" `Quick test_redundant_fence;
          Alcotest.test_case "duplicate-flush" `Quick test_duplicate_flush;
          Alcotest.test_case "unnecessary-flush" `Quick test_unnecessary_flush;
          Alcotest.test_case "write-after-flush" `Quick test_write_after_flush;
          Alcotest.test_case "unlogged-tx-write" `Quick test_unlogged_tx_write;
          Alcotest.test_case "unbalanced-tx" `Quick test_unbalanced_tx;
          Alcotest.test_case "unmatched-exclude" `Quick test_unmatched_exclude;
          Alcotest.test_case "exclusion scope" `Quick test_exclusion_scope;
          Alcotest.test_case "persistency models" `Quick test_models;
        ] );
      ( "config",
        [
          Alcotest.test_case "inline suppression" `Quick test_suppression;
          Alcotest.test_case "rule selection" `Quick test_rule_selection;
          Alcotest.test_case "report and machine output" `Quick test_report_and_output;
          Alcotest.test_case "machine lines golden TSV" `Quick test_machine_lines_golden;
          Alcotest.test_case "rule ids round-trip" `Quick test_rule_ids_round_trip;
          Alcotest.test_case "strip_checkers" `Quick test_strip_checkers;
        ] );
      ( "bugdb",
        [
          Alcotest.test_case "flush/fence bugs from raw streams" `Quick test_bugdb_detection;
          Alcotest.test_case "clean twins stay clean" `Quick test_bugdb_clean_twins;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_agrees_with_engine ] );
    ]
