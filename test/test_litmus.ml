(* The litmus subsystem: every curated suite entry must pass all three
   legs (engine, oracle, crashtest), deliberately broken model
   simulations must be caught, and litmus programs must round-trip
   through the .pmt serial format with the verdict intact. *)

open Pmtest_model
module Litmus = Pmtest_litmus.Litmus
module Suite = Pmtest_litmus.Suite
module Oracle = Pmtest_fuzz.Oracle
module Gen = Pmtest_fuzz.Gen
module Serial = Pmtest_trace.Serial

let pp_failures fs =
  String.concat "; "
    (List.map (fun (f : Litmus.failure) -> Printf.sprintf "[%s] %s" f.Litmus.leg f.Litmus.message) fs)

(* --- Golden: the whole suite passes, entry by entry ------------------------ *)

let golden_case (t : Litmus.t) =
  Alcotest.test_case t.Litmus.name `Quick (fun () ->
      let o = Litmus.run_test t in
      if not (Litmus.passed o) then
        Alcotest.failf "%s: %s" t.Litmus.name (pp_failures o.Litmus.failures))

let test_suite_shape () =
  Alcotest.(check bool) "at least 25 tests" true (List.length Suite.all >= 25);
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Model.kind_name kind ^ " has at least 4 tests")
        true
        (List.length (Suite.for_model kind) >= 4))
    Model.all_kinds;
  List.iter
    (fun (t : Litmus.t) ->
      Alcotest.(check bool) (t.Litmus.name ^ " has state expectations") true (t.Litmus.states <> []);
      Alcotest.(check bool) (t.Litmus.name ^ " has checker expectations") true
        (t.Litmus.checkers <> []))
    Suite.all

(* --- Broken model variants are caught -------------------------------------- *)

(* A model simulation whose named barrier does nothing. The litmus
   harness must notice: forbidden states become reachable (or allowed
   ones unreachable) and the oracle leg reports it. *)
let sim_without op_broken (p : Gen.program) =
  let base = Oracle.sim_for ~limit:(1 lsl 16) p in
  { base with Oracle.op = (fun op -> if op = op_broken then () else base.Oracle.op op) }

let expect_caught name op_broken =
  match Suite.find name with
  | None -> Alcotest.failf "suite entry %s disappeared" name
  | Some t ->
    let o = Litmus.run_test ~sim:(sim_without op_broken) t in
    if Litmus.passed o then
      Alcotest.failf "%s: broken model (no-op %s) passed the litmus harness" name
        (Format.asprintf "%a" Model.pp_op op_broken);
    if not (List.exists (fun (f : Litmus.failure) -> f.Litmus.leg = "oracle") o.Litmus.failures)
    then
      Alcotest.failf "%s: broken model caught, but not by the oracle leg (%s)" name
        (pp_failures o.Litmus.failures)

let test_broken_cxl_gpf () = expect_caught "cxl-gpf-durable" Model.Gpf
let test_broken_x86_sfence () = expect_caught "x86-flush-fence-durable" Model.Sfence
let test_broken_hops_dfence () = expect_caught "hops-dfence-durable" Model.Dfence

(* A simulation that persists too eagerly (every write durable at once)
   must be caught the other way around: states the model allows become
   unreachable. *)
let test_broken_eager_persist () =
  match Suite.find "cxl-store-not-durable" with
  | None -> Alcotest.fail "suite entry cxl-store-not-durable disappeared"
  | Some t ->
    let eager (p : Gen.program) =
      let base = Oracle.sim_for ~limit:(1 lsl 16) p in
      {
        base with
        Oracle.write =
          (fun ~addr v ->
            base.Oracle.write ~addr v;
            base.Oracle.op Model.Gpf);
      }
    in
    let o = Litmus.run_test ~sim:eager t in
    if Litmus.passed o then
      Alcotest.fail "eagerly-persisting CXL simulation passed the litmus harness"

(* --- .pmt round-trip keeps the verdict ------------------------------------- *)

let roundtrip_verdict (t : Litmus.t) =
  let path = Filename.temp_file "litmus" ".pmt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Serial.save_file
        ~header:[ "litmus round-trip"; "model: " ^ Model.kind_name t.Litmus.model ]
        path t.Litmus.events;
      match Serial.load_file_with_header path with
      | Error e -> Alcotest.failf "%s: reload failed: %s" t.Litmus.name e
      | Ok (_, events) ->
        Alcotest.(check int)
          (t.Litmus.name ^ " event count survives")
          (Array.length t.Litmus.events) (Array.length events);
        let o = Litmus.run_test (Litmus.with_events t events) in
        if not (Litmus.passed o) then
          Alcotest.failf "%s: verdict changed after .pmt round-trip: %s" t.Litmus.name
            (pp_failures o.Litmus.failures))

let qcheck_roundtrip =
  let n = List.length Suite.all in
  QCheck2.Test.make ~name:"litmus programs round-trip through .pmt with the same verdict"
    ~count:n
    ~print:(fun i -> (List.nth Suite.all (abs i mod n)).Litmus.name)
    QCheck2.Gen.(int_range 0 (n - 1))
    (fun i ->
      roundtrip_verdict (List.nth Suite.all (abs i mod n));
      true)

let () =
  Alcotest.run "litmus"
    [
      ("suite", Alcotest.test_case "shape" `Quick test_suite_shape :: List.map golden_case Suite.all);
      ( "broken-models",
        [
          Alcotest.test_case "CXL without gpf is caught" `Quick test_broken_cxl_gpf;
          Alcotest.test_case "x86 without sfence is caught" `Quick test_broken_x86_sfence;
          Alcotest.test_case "HOPS without dfence is caught" `Quick test_broken_hops_dfence;
          Alcotest.test_case "eagerly-persisting CXL is caught" `Quick test_broken_eager_persist;
        ] );
      ("roundtrip", [ QCheck_alcotest.to_alcotest qcheck_roundtrip ]);
    ]
