(* pmfarm end to end: spec and checkpoint round trips, deterministic
   job digests, a real coordinator/worker campaign over a Unix socket,
   crash-resume equality (the checkpoint is the campaign), zero lost
   jobs when a worker dies mid-claim, nondeterminism flagging, and a
   worker link that survives corrupt job offers. *)

module Farm = Pmtest_farm.Farm
module Wire = Pmtest_wire.Wire
module Model = Pmtest_model.Model
module Crashfs = Pmtest_crashfs.Crashfs

let next_id =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "pmfarm-test-%d-%d" (Unix.getpid ()) !n

let next_socket () =
  Filename.concat (Filename.get_temp_dir_name ()) (next_id () ^ ".sock")

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let with_dir f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) (next_id ()) in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Small and fast: 4 fuzz jobs of 10 tiny programs each. *)
let fuzz_spec = Farm.Spec.fuzz ~max_ops:10 ~model:Model.X86 ~seed:0 ~count:40 ~chunk:10 ()

(* A seeded pmfs fault that deterministically surfaces findings: 3 jobs,
   4 reproducers over the 30 runs. *)
let crash_spec =
  Farm.Spec.crashfs ~fault:"skip-journal-flush" ~fs:Crashfs.Pmfs ~model:Model.X86 ~seed:0
    ~count:30 ~chunk:10 ()

let direct_results spec =
  List.map
    (fun (id, lo, hi) ->
      match Farm.run_units spec ~lo ~hi with
      | Ok r -> (id, r)
      | Error e -> Alcotest.failf "run_units [%d,%d): %s" lo hi e)
    (Farm.Spec.jobs spec)

let direct_digests spec =
  List.map (fun (id, r) -> (id, r.Farm.digest)) (direct_results spec)

(* What the coordinator's triage store should end up holding: every
   per-job finding, deduplicated by reproducer text. *)
let direct_finding_count spec =
  direct_results spec
  |> List.concat_map (fun (_, r) -> List.map snd r.Farm.findings)
  |> List.sort_uniq compare
  |> List.length

(* Run a coordinator on its own thread; returns once the socket listens. *)
let start_coordinator cfg =
  let result = ref None in
  let ready = ref false in
  let t =
    Thread.create
      (fun () -> result := Some (Farm.Coordinator.run ~ready:(fun () -> ready := true) cfg))
      ()
  in
  while (not !ready) && !result = None do
    Thread.delay 0.002
  done;
  (t, result)

let finish_coordinator (t, result) =
  Thread.join t;
  match !result with
  | Some (Ok s) -> s
  | Some (Error e) -> Alcotest.failf "coordinator: %s" e
  | None -> Alcotest.fail "coordinator thread died without a result"

let start_worker ?(attempts = 8) ~socket name =
  Thread.create
    (fun () ->
      ignore
        (Farm.Worker.run
           { (Farm.Worker.default_cfg ~socket ~name) with Farm.Worker.attempts }))
    ()

(* --- Specs ------------------------------------------------------------------- *)

let test_spec_round_trip () =
  List.iter
    (fun spec ->
      let s = Farm.Spec.to_string spec in
      match Farm.Spec.of_string s with
      | Error e -> Alcotest.failf "%s: %s" s e
      | Ok got ->
        Alcotest.(check bool) (s ^ " survives") true (got = spec);
        Alcotest.(check string) "renders identically" s (Farm.Spec.to_string got))
    [
      fuzz_spec;
      crash_spec;
      Farm.Spec.fuzz ~model:Model.Cxl ~seed:1000 ~count:1 ~chunk:1 ();
      Farm.Spec.crashfs ~max_ops:12 ~fs:Crashfs.Nova ~model:Model.Eadr ~seed:7 ~count:50
        ~chunk:9 ();
      Farm.Spec.litmus ~chunk:4 ();
    ]

let test_spec_rejects_garbage () =
  List.iter
    (fun s ->
      match Farm.Spec.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [
      "";
      "bogus model=x86 seed=0 count=1 chunk=1";
      "fuzz model=martian seed=0 count=1 chunk=1";
      "fuzz model=x86 seed=0 count=1 chunk=1 surprise=1";
      "fuzz model=x86 seed=zero count=1 chunk=1";
      "fuzz model=x86 seed=0 chunk=1";
      "fuzz model=x86 seed=0 count=1";
      "fuzz model=x86 seed=0 count=1 chunk=0";
      "crashfs model=x86 fs=extfour seed=0 count=1 chunk=1";
      "fuzz model=x86 seed=-3 count=1 chunk=1";
      "crashfs model=x86 fs=pmfs fault=no-such-fault seed=0 count=1 chunk=1";
      "fuzz model=x86 fault=skip-journal-flush seed=0 count=1 chunk=1";
    ]

let test_spec_jobs_cover_the_range () =
  let spec = Farm.Spec.fuzz ~model:Model.X86 ~seed:5 ~count:10 ~chunk:4 () in
  Alcotest.(check (list (triple int int int)))
    "contiguous chunks, short tail"
    [ (0, 5, 9); (1, 9, 13); (2, 13, 15) ]
    (Farm.Spec.jobs spec)

(* --- Job execution ----------------------------------------------------------- *)

let test_run_units_deterministic () =
  match (Farm.run_units fuzz_spec ~lo:10 ~hi:20, Farm.run_units fuzz_spec ~lo:10 ~hi:20) with
  | Ok a, Ok b ->
    Alcotest.(check string) "same job, same digest" a.Farm.digest b.Farm.digest;
    Alcotest.(check int) "units" 10 a.Farm.units
  | Error e, _ | _, Error e -> Alcotest.failf "run_units: %s" e

(* --- Checkpoints ------------------------------------------------------------- *)

let test_checkpoint_round_trip () =
  with_dir (fun dir ->
      let path = Filename.concat dir "checkpoint" in
      let ck =
        {
          Farm.Checkpoint.spec = crash_spec;
          jobs = 3;
          done_jobs =
            [
              { Farm.Checkpoint.job = 0; attempt = 1; units = 10; digest = "aaaa" };
              { Farm.Checkpoint.job = 2; attempt = 3; units = 10; digest = "cccc" };
            ];
          findings = [ ("d1", "pmfs-skip-journal-flush-seed4") ];
          nondet = [ 1 ];
        }
      in
      Farm.Checkpoint.save ~path ck;
      (match Farm.Checkpoint.load path with
      | Error e -> Alcotest.fail e
      | Ok got -> Alcotest.(check bool) "checkpoint survives" true (got = ck));
      (match Farm.Checkpoint.load (Filename.concat dir "nope") with
      | Ok _ -> Alcotest.fail "loaded a missing checkpoint"
      | Error _ -> ());
      let bad = Filename.concat dir "bad" in
      let oc = open_out bad in
      output_string oc "not a checkpoint\n";
      close_out oc;
      match Farm.Checkpoint.load bad with
      | Ok _ -> Alcotest.fail "loaded garbage"
      | Error _ -> ())

(* --- End to end -------------------------------------------------------------- *)

let test_two_worker_campaign_matches_direct () =
  with_dir (fun dir ->
      let socket = next_socket () in
      let cfg = Farm.Coordinator.default_cfg ~spec:crash_spec ~socket ~dir in
      let coord = start_coordinator cfg in
      let w1 = start_worker ~socket "w-a" in
      let w2 = start_worker ~socket "w-b" in
      let s = finish_coordinator coord in
      Thread.join w1;
      Thread.join w2;
      Alcotest.(check int) "all jobs done" s.Farm.Coordinator.jobs
        s.Farm.Coordinator.jobs_done;
      Alcotest.(check int) "both workers served" 2 s.Farm.Coordinator.workers_seen;
      Alcotest.(check (list (pair int string)))
        "distributed digests equal a direct run" (direct_digests crash_spec)
        s.Farm.Coordinator.digests;
      Alcotest.(check (list int)) "no nondeterminism" [] s.Farm.Coordinator.nondet;
      let want_findings = direct_finding_count crash_spec in
      Alcotest.(check bool) "the seeded fault surfaced reproducers" true (want_findings > 0);
      Alcotest.(check int) "finding set matches a direct run" want_findings
        (List.length s.Farm.Coordinator.findings);
      (* The triage store holds exactly the deduplicated reproducers. *)
      let pmts =
        Sys.readdir cfg.Farm.Coordinator.triage_dir
        |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".pmt")
      in
      Alcotest.(check int) "triage store matches the finding set" want_findings
        (List.length pmts))

let test_crash_resume_matches_uninterrupted () =
  (* The acceptance property: a campaign hard-killed after its first
     result, then resumed from the on-disk checkpoint, ends with the
     same per-job digests and the same finding set as a run that was
     never interrupted. *)
  with_dir (fun dir_a ->
      with_dir (fun dir_b ->
          (* Uninterrupted reference run. *)
          let socket_a = next_socket () in
          let cfg_a = Farm.Coordinator.default_cfg ~spec:crash_spec ~socket:socket_a ~dir:dir_a in
          let coord_a = start_coordinator cfg_a in
          let wa = start_worker ~socket:socket_a "ref" in
          let full = finish_coordinator coord_a in
          Thread.join wa;
          Alcotest.(check int) "reference run complete" full.Farm.Coordinator.jobs
            full.Farm.Coordinator.jobs_done;
          (* Crashed run: the coordinator hard-stops after one result —
             no Bye, no extra bookkeeping, exactly as a SIGKILL would
             leave things.  The worker loses its link mid-campaign and
             exhausts its reconnect budget. *)
          let socket_b = next_socket () in
          let base = Farm.Coordinator.default_cfg ~spec:crash_spec ~socket:socket_b ~dir:dir_b in
          let crashed_cfg = { base with Farm.Coordinator.stop_after_results = Some 1 } in
          let coord_b = start_coordinator crashed_cfg in
          let wb = start_worker ~attempts:2 ~socket:socket_b "doomed" in
          let crashed = finish_coordinator coord_b in
          Thread.join wb;
          Alcotest.(check int) "crashed after exactly one result" 1
            crashed.Farm.Coordinator.jobs_done;
          (match Farm.Checkpoint.load base.Farm.Coordinator.checkpoint with
          | Error e -> Alcotest.failf "post-crash checkpoint: %s" e
          | Ok ck ->
            Alcotest.(check int) "checkpoint carries the one survivor" 1
              (List.length ck.Farm.Checkpoint.done_jobs));
          (* Resume from the checkpoint and finish. *)
          let resume_cfg = { base with Farm.Coordinator.resume = true } in
          let coord_c = start_coordinator resume_cfg in
          let wc = start_worker ~socket:socket_b "revived" in
          let resumed = finish_coordinator coord_c in
          Thread.join wc;
          Alcotest.(check int) "resumed run complete" resumed.Farm.Coordinator.jobs
            resumed.Farm.Coordinator.jobs_done;
          Alcotest.(check (list (pair int string)))
            "same per-job digests as the uninterrupted run"
            full.Farm.Coordinator.digests resumed.Farm.Coordinator.digests;
          Alcotest.(check (list (pair string string)))
            "same finding set as the uninterrupted run" full.Farm.Coordinator.findings
            resumed.Farm.Coordinator.findings;
          Alcotest.(check (list int)) "replay found no nondeterminism" []
            resumed.Farm.Coordinator.nondet))

let must_write fd kind payload =
  match Wire.write_frame fd kind payload with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write %s: %s" (Wire.kind_name kind) (Wire.error_to_string e)

let must_read fd =
  match Wire.read_frame fd with
  | Ok f -> f
  | Error e -> Alcotest.failf "read: %s" (Wire.error_to_string e)

let test_worker_death_loses_no_jobs () =
  (* A hand-rolled worker handshakes, claims the first job, and drops
     dead.  The coordinator must reassign that job to the real worker
     that arrives next; the campaign ends with every job done and the
     same digests as a direct run. *)
  with_dir (fun dir ->
      let socket = next_socket () in
      let cfg = Farm.Coordinator.default_cfg ~spec:fuzz_spec ~socket ~dir in
      let coord = start_coordinator cfg in
      let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      Unix.connect fd (ADDR_UNIX socket);
      must_write fd Wire.Worker_hello
        (Wire.encode_worker_hello ~farm:Wire.farm_version ~name:"doomed" ~engines:0);
      (match must_read fd with
      | Wire.Worker_hello, _ -> ()
      | kind, _ -> Alcotest.failf "expected hello ack, got %s" (Wire.kind_name kind));
      (match must_read fd with
      | Wire.Job_offer, payload -> (
        match Wire.decode_job_offer payload with
        | Ok (job, attempt, _, _, _) ->
          must_write fd Wire.Job_claim (Wire.encode_job_claim ~job ~attempt)
        | Error e -> Alcotest.failf "offer: %s" (Wire.error_to_string e))
      | kind, _ -> Alcotest.failf "expected an offer, got %s" (Wire.kind_name kind));
      (* Die without a word, job in hand. *)
      Unix.close fd;
      let w = start_worker ~socket "survivor" in
      let s = finish_coordinator coord in
      Thread.join w;
      Alcotest.(check int) "zero lost jobs" s.Farm.Coordinator.jobs
        s.Farm.Coordinator.jobs_done;
      Alcotest.(check bool) "the claimed job was reassigned" true
        (s.Farm.Coordinator.reassigned >= 1);
      Alcotest.(check (list (pair int string)))
        "digests unaffected by the death" (direct_digests fuzz_spec)
        s.Farm.Coordinator.digests)

let test_duplicate_result_mismatch_flags_nondet () =
  (* Replay verification: a second result for an already-done job whose
     digest disagrees is flagged as nondeterminism, never silently
     resolved.  The fake worker answers job 0 twice with different
     digests, then finishes the rest honestly enough to end the run. *)
  with_dir (fun dir ->
      let socket = next_socket () in
      let spec = Farm.Spec.fuzz ~max_ops:8 ~model:Model.X86 ~seed:0 ~count:2 ~chunk:1 () in
      let cfg = Farm.Coordinator.default_cfg ~spec ~socket ~dir in
      let coord = start_coordinator cfg in
      let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      Unix.connect fd (ADDR_UNIX socket);
      must_write fd Wire.Worker_hello
        (Wire.encode_worker_hello ~farm:Wire.farm_version ~name:"liar" ~engines:0);
      (match must_read fd with
      | Wire.Worker_hello, _ -> ()
      | kind, _ -> Alcotest.failf "expected hello ack, got %s" (Wire.kind_name kind));
      let answer ~twice =
        match must_read fd with
        | Wire.Job_offer, payload -> (
          match Wire.decode_job_offer payload with
          | Error e -> Alcotest.failf "offer: %s" (Wire.error_to_string e)
          | Ok (job, attempt, _lo, _hi, _spec) ->
            let result digest =
              Wire.encode_job_result ~job ~attempt ~digest ~units:1 ~elapsed_ms:1
                ~findings:[]
            in
            must_write fd Wire.Job_result (result "digest-one");
            if twice then must_write fd Wire.Job_result (result "digest-two"))
        | kind, _ -> Alcotest.failf "expected an offer, got %s" (Wire.kind_name kind)
      in
      answer ~twice:true;
      answer ~twice:false;
      (match must_read fd with
      | Wire.Bye, _ -> ()
      | kind, _ -> Alcotest.failf "expected bye, got %s" (Wire.kind_name kind));
      Unix.close fd;
      let s = finish_coordinator coord in
      Alcotest.(check (list int)) "job 0 flagged nondeterministic" [ 0 ]
        s.Farm.Coordinator.nondet)

let test_corrupt_offer_does_not_kill_worker () =
  (* The test plays coordinator: after the handshake it sends a
     well-framed [Job_offer] whose payload is garbage (answered with a
     bare [Err]), then one whose spec is gibberish (answered with
     [Job_refused] naming the job).  Either way the worker stays on the
     line — the next valid offer still gets executed. *)
  let socket = next_socket () in
  let listen_fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Unix.bind listen_fd (ADDR_UNIX socket);
  Unix.listen listen_fd 1;
  let jobs_done = ref None in
  let worker =
    Thread.create
      (fun () ->
        jobs_done :=
          Some
            (Farm.Worker.run
               { (Farm.Worker.default_cfg ~socket ~name:"stoic") with
                 Farm.Worker.hb_interval = 60.0;
               }))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Sys.remove socket with Sys_error _ -> ())
    (fun () ->
      let fd, _ = Unix.accept ~cloexec:true listen_fd in
      (match must_read fd with
      | Wire.Worker_hello, _ -> ()
      | kind, _ -> Alcotest.failf "expected worker hello, got %s" (Wire.kind_name kind));
      must_write fd Wire.Worker_hello
        (Wire.encode_worker_hello ~farm:Wire.farm_version ~name:"w0" ~engines:0);
      (* Skip the claim/heartbeat chatter; find the next interesting frame. *)
      let rec next () =
        match must_read fd with
        | (Wire.Job_claim | Wire.Checkpoint), _ -> next ()
        | f -> f
      in
      (* Valid frame, undecodable payload: the worker cannot even name
         the job, so a bare [Err] is all it can answer. *)
      must_write fd Wire.Job_offer "\xff\xff\xff\xff garbage";
      (match next () with
      | Wire.Err, _ -> ()
      | kind, _ -> Alcotest.failf "expected err for garbage offer, got %s" (Wire.kind_name kind));
      (* Decodable offer, gibberish campaign spec: refused by job id so
         the coordinator can unassign it. *)
      must_write fd Wire.Job_offer
        (Wire.encode_job_offer ~job:0 ~attempt:1 ~lo:0 ~hi:5 ~spec:"haunted model=ghost");
      (match next () with
      | Wire.Job_refused, payload -> (
        match Wire.decode_job_refused payload with
        | Ok (0, 1, _reason) -> ()
        | Ok (job, attempt, _) ->
          Alcotest.failf "refusal names job %d attempt %d, wanted 0/1" job attempt
        | Error e -> Alcotest.failf "refusal: %s" (Wire.error_to_string e))
      | kind, _ ->
        Alcotest.failf "expected job-refused for bad spec, got %s" (Wire.kind_name kind));
      (* The link survived: a real offer still produces a real result. *)
      let spec = Farm.Spec.fuzz ~max_ops:8 ~model:Model.X86 ~seed:0 ~count:5 ~chunk:5 () in
      must_write fd Wire.Job_offer
        (Wire.encode_job_offer ~job:0 ~attempt:1 ~lo:0 ~hi:5
           ~spec:(Farm.Spec.to_string spec));
      let wait_result () =
        match next () with
        | Wire.Job_result, payload -> (
          match Wire.decode_job_result payload with
          | Ok r -> r
          | Error e -> Alcotest.failf "result: %s" (Wire.error_to_string e))
        | kind, _ -> Alcotest.failf "expected a result, got %s" (Wire.kind_name kind)
      in
      let job, _attempt, digest, units, _ms, _findings = wait_result () in
      Alcotest.(check int) "job id" 0 job;
      Alcotest.(check int) "units" 5 units;
      (match Farm.run_units spec ~lo:0 ~hi:5 with
      | Ok direct -> Alcotest.(check string) "honest digest" direct.Farm.digest digest
      | Error e -> Alcotest.failf "direct run: %s" e);
      must_write fd Wire.Bye "";
      Unix.close fd;
      Thread.join worker;
      match !jobs_done with
      | Some (Ok 1) -> ()
      | Some (Ok n) -> Alcotest.failf "worker reported %d jobs, wanted 1" n
      | Some (Error e) -> Alcotest.failf "worker: %s" e
      | None -> Alcotest.fail "worker thread died")

let refusing_worker_handshake socket name =
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Unix.connect fd (ADDR_UNIX socket);
  must_write fd Wire.Worker_hello
    (Wire.encode_worker_hello ~farm:Wire.farm_version ~name ~engines:0);
  (match must_read fd with
  | Wire.Worker_hello, _ -> ()
  | kind, _ -> Alcotest.failf "expected hello ack, got %s" (Wire.kind_name kind));
  fd

let read_offer fd =
  match must_read fd with
  | Wire.Job_offer, payload -> (
    match Wire.decode_job_offer payload with
    | Ok o -> o
    | Error e -> Alcotest.failf "offer: %s" (Wire.error_to_string e))
  | kind, _ -> Alcotest.failf "expected an offer, got %s" (Wire.kind_name kind)

let test_refused_job_is_requeued () =
  (* A worker that cannot run a job says so with [Job_refused]; the
     coordinator must unassign and re-offer it — the worker stays live
     and heartbeating, so no timeout or steal would ever recover it.
     Two refusals (below the abort cap), then an honest result: the
     campaign still completes. *)
  with_dir (fun dir ->
      let socket = next_socket () in
      let spec = Farm.Spec.fuzz ~max_ops:8 ~model:Model.X86 ~seed:0 ~count:5 ~chunk:5 () in
      let cfg = Farm.Coordinator.default_cfg ~spec ~socket ~dir in
      let coord = start_coordinator cfg in
      let fd = refusing_worker_handshake socket "picky" in
      let job, attempt, lo, hi, _ = read_offer fd in
      Alcotest.(check (pair int int)) "first offer" (0, 1) (job, attempt);
      must_write fd Wire.Job_refused
        (Wire.encode_job_refused ~job ~attempt ~reason:"not feeling it");
      let job, attempt, _, _, _ = read_offer fd in
      Alcotest.(check (pair int int)) "re-offered with a fresh attempt" (0, 2) (job, attempt);
      must_write fd Wire.Job_refused
        (Wire.encode_job_refused ~job ~attempt ~reason:"still not feeling it");
      let job, attempt, _, _, _ = read_offer fd in
      Alcotest.(check (pair int int)) "third offer" (0, 3) (job, attempt);
      (match Farm.run_units spec ~lo ~hi with
      | Error e -> Alcotest.failf "direct run: %s" e
      | Ok r ->
        must_write fd Wire.Job_result
          (Wire.encode_job_result ~job ~attempt ~digest:r.Farm.digest ~units:r.Farm.units
             ~elapsed_ms:1 ~findings:r.Farm.findings));
      (match must_read fd with
      | Wire.Bye, _ -> ()
      | kind, _ -> Alcotest.failf "expected bye, got %s" (Wire.kind_name kind));
      Unix.close fd;
      let s = finish_coordinator coord in
      Alcotest.(check int) "the refused job still completed" s.Farm.Coordinator.jobs
        s.Farm.Coordinator.jobs_done)

let test_repeated_refusals_abort_campaign () =
  (* A deterministically failing job must not bounce between offers
     forever (nor deadlock the campaign, as it did when refusals were
     ignored): after the refusal cap the coordinator gives up with the
     worker's reason. *)
  with_dir (fun dir ->
      let socket = next_socket () in
      let spec = Farm.Spec.fuzz ~max_ops:8 ~model:Model.X86 ~seed:0 ~count:5 ~chunk:5 () in
      let cfg = Farm.Coordinator.default_cfg ~spec ~socket ~dir in
      let coord = start_coordinator cfg in
      let fd = refusing_worker_handshake socket "naysayer" in
      for _ = 1 to 3 do
        let job, attempt, _, _, _ = read_offer fd in
        must_write fd Wire.Job_refused
          (Wire.encode_job_refused ~job ~attempt ~reason:"engine not built")
      done;
      (* An aborted campaign still says goodbye so workers exit. *)
      (match must_read fd with
      | Wire.Bye, _ -> ()
      | kind, _ -> Alcotest.failf "expected bye, got %s" (Wire.kind_name kind));
      Unix.close fd;
      let t, result = coord in
      Thread.join t;
      match !result with
      | Some (Error e) ->
        Alcotest.(check bool)
          (Printf.sprintf "error names the job (%s)" e)
          true
          (let has_sub s sub =
             let n = String.length sub in
             let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
             go 0
           in
           has_sub e "job 0" && has_sub e "engine not built")
      | Some (Ok _) -> Alcotest.fail "campaign succeeded despite a permanently refused job"
      | None -> Alcotest.fail "coordinator thread died without a result")

let test_invalid_specs_rejected_before_serving () =
  (* Negative seeds would blow up mid-[encode_job_offer] under the
     coordinator lock; an unknown fault would make every attempt of
     every job fail worker-side.  Both are rejected before the socket
     even opens. *)
  (match Farm.Spec.validate (Farm.Spec.fuzz ~model:Model.X86 ~seed:(-1) ~count:5 ~chunk:5 ()) with
  | Ok () -> Alcotest.fail "negative seed validated"
  | Error _ -> ());
  with_dir (fun dir ->
      List.iter
        (fun spec ->
          let cfg = Farm.Coordinator.default_cfg ~spec ~socket:(next_socket ()) ~dir in
          match Farm.Coordinator.run cfg with
          | Ok _ -> Alcotest.failf "coordinator served %s" (Farm.Spec.to_string spec)
          | Error _ -> ())
        [
          Farm.Spec.fuzz ~model:Model.X86 ~seed:(-7) ~count:5 ~chunk:5 ();
          Farm.Spec.crashfs ~fault:"no-such-fault" ~fs:Crashfs.Pmfs ~model:Model.X86 ~seed:0
            ~count:5 ~chunk:5 ();
        ])

let () =
  Alcotest.run "farm"
    [
      ( "spec",
        [
          Alcotest.test_case "round trip" `Quick test_spec_round_trip;
          Alcotest.test_case "garbage rejected" `Quick test_spec_rejects_garbage;
          Alcotest.test_case "jobs cover the seed range" `Quick
            test_spec_jobs_cover_the_range;
        ] );
      ( "jobs",
        [ Alcotest.test_case "run_units is deterministic" `Quick test_run_units_deterministic ]
      );
      ( "checkpoint",
        [ Alcotest.test_case "save/load round trip" `Quick test_checkpoint_round_trip ] );
      ( "campaign",
        [
          Alcotest.test_case "two workers match a direct run" `Quick
            test_two_worker_campaign_matches_direct;
          Alcotest.test_case "crash + resume matches uninterrupted" `Quick
            test_crash_resume_matches_uninterrupted;
          Alcotest.test_case "worker death loses no jobs" `Quick
            test_worker_death_loses_no_jobs;
          Alcotest.test_case "digest mismatch flags nondeterminism" `Quick
            test_duplicate_result_mismatch_flags_nondet;
          Alcotest.test_case "corrupt offers do not kill the worker" `Quick
            test_corrupt_offer_does_not_kill_worker;
          Alcotest.test_case "refused job is requeued" `Quick test_refused_job_is_requeued;
          Alcotest.test_case "repeated refusals abort the campaign" `Quick
            test_repeated_refusals_abort_campaign;
          Alcotest.test_case "invalid specs rejected before serving" `Quick
            test_invalid_specs_rejected_before_serving;
        ] );
    ]
